// SessionManager lock-scope regression tests: resume replay and park
// serialization run OFF the manager lock, so one slow session cannot
// stall the service for everyone else. Named test_serve_* so
// tools/run_sanitizers.sh picks it up for the TSan lane.
#include "serve/session.hpp"

#include <gtest/gtest.h>

#include <cstddef>
#include <string>
#include <thread>
#include <vector>

#include "dse/min_plus_one.hpp"
#include "dse/scheduler.hpp"

namespace {

namespace d = ace::dse;
namespace s = ace::serve;

d::SimulatorFn make_surface(std::size_t salt) {
  return [salt](const d::Config& c) {
    double acc = 0.0;
    for (std::size_t i = 0; i < c.size(); ++i)
      acc += (1.0 + 0.07 * static_cast<double>((i + salt) % 5)) *
             static_cast<double>(c[i]);
    return acc + 0.01 * static_cast<double>(salt % 11);
  };
}

s::SessionSpec min_plus_spec(std::size_t salt) {
  s::SessionSpec spec;
  spec.name = "min+1 #" + std::to_string(salt);
  spec.policy.factor_cache_capacity = 4;
  spec.optimizer = s::OptimizerKind::kMinPlusOne;
  spec.min_plus.nv = 3;
  spec.min_plus.w_max = 10;
  spec.min_plus.w_min = 2;
  spec.min_plus.lambda_min = 18.0 + static_cast<double>(salt % 4);
  spec.simulate = make_surface(salt);
  return spec;
}

/// A spec whose finished run leaves a large store with frequent refits —
/// its checkpoint replay takes real work, which is what the off-lock
/// resume test needs to observe.
s::SessionSpec heavy_spec() {
  s::SessionSpec spec;
  spec.name = "heavy";
  // Small radius + tight refit period: nearly every evaluation simulates
  // (big store) and the replay refits constantly — a deliberately
  // expensive checkpoint.
  spec.policy.distance = 1;
  spec.policy.refit_period = 2;
  spec.optimizer = s::OptimizerKind::kMinPlusOne;
  spec.min_plus.nv = 8;
  spec.min_plus.w_max = 24;
  spec.min_plus.w_min = 2;
  spec.min_plus.lambda_min = 100.0;
  spec.simulate = make_surface(13);
  return spec;
}

d::MinPlusOneResult standalone_min_plus(const s::SessionSpec& spec) {
  d::KrigingPolicy policy(spec.policy);
  const auto evaluate = d::policy_batch_evaluator(policy, spec.simulate);
  d::MinPlusOneCursor cursor = d::make_min_plus_one_cursor(spec.min_plus);
  while (d::min_plus_one_step(evaluate, spec.min_plus, cursor)) {
  }
  return d::min_plus_one_result(cursor, spec.min_plus);
}

void expect_identical(const d::MinPlusOneResult& a,
                      const d::MinPlusOneResult& b) {
  EXPECT_EQ(a.decisions, b.decisions);
  EXPECT_EQ(a.w_min, b.w_min);
  EXPECT_EQ(a.w_res, b.w_res);
  EXPECT_EQ(a.constraint_met, b.constraint_met);
  EXPECT_EQ(a.final_lambda, b.final_lambda);
}

TEST(ServeConcurrency, SlowResumeDoesNotBlockOtherSessions) {
  s::SessionManagerOptions options;
  options.service_threads = 2;
  s::SessionManager manager(options);

  // Session A: run to completion (big store), then park. Its resume must
  // replay the whole checkpoint.
  const s::SessionId a = manager.create(heavy_spec());
  manager.wait(manager.submit(a, 1000));
  manager.park(a);
  ASSERT_FALSE(manager.progress(a).resident);

  // Session B: small and already resident.
  const s::SessionId b = manager.create(min_plus_spec(2));
  manager.wait(manager.submit(b, 1));

  // Kick off A's resume. The service thread reserves the resident slot
  // under the lock the moment it claims the request — visible through
  // resident_count() — and only then replays off-lock, so once the count
  // reaches 2 (B + A's reservation) the replay window is open.
  const s::Ticket resume_ticket = manager.submit(a, 0);
  while (manager.resident_count() < 2) std::this_thread::yield();

  // A full submit->wait round trip through B must complete strictly
  // inside that window. With the replay under the manager lock this
  // submit could not even be claimed before the resume ended, and A
  // would read resident here; off-lock, B's request drains on the second
  // service thread in well under the replay's hundreds of milliseconds,
  // and A's policy slot is still empty when the wait returns.
  manager.wait(manager.submit(b, 0));
  EXPECT_FALSE(manager.progress(a).resident);

  manager.wait(resume_ticket);
  EXPECT_TRUE(manager.progress(a).resident);
  EXPECT_EQ(manager.stats().resumes, 1u);
  expect_identical(manager.min_plus_one_result(a),
                   standalone_min_plus(heavy_spec()));
}

TEST(ServeConcurrency, ParkResumeRacingSubmitsStaysIdentical) {
  // 12 sessions, a resident cache of 3 and explicit park() calls racing
  // the submit stream: every combination of {parking, parked, resuming,
  // resident} meets concurrent submits. Decision identity must survive.
  constexpr std::size_t kSessions = 12;
  s::SessionManagerOptions options;
  options.service_threads = 4;
  options.queue_capacity = 8;
  options.resident_capacity = 3;
  s::SessionManager manager(options);

  std::vector<s::SessionId> ids;
  for (std::size_t i = 0; i < kSessions; ++i)
    ids.push_back(manager.create(min_plus_spec(i)));

  std::vector<std::thread> submitters;
  for (std::size_t t = 0; t < 3; ++t) {
    submitters.emplace_back([&, t] {
      for (int round = 0; round < 4; ++round)
        for (std::size_t i = t; i < kSessions; i += 3)
          manager.wait(manager.submit(ids[i], 1));
    });
  }
  std::thread parker([&] {
    for (int round = 0; round < 3; ++round)
      for (std::size_t i = 0; i < kSessions; i += 2) manager.park(ids[i]);
  });
  for (std::thread& t : submitters) t.join();
  parker.join();
  manager.drain();

  const auto mid_stats = manager.stats();
  EXPECT_GT(mid_stats.parks, 0u);
  EXPECT_GT(mid_stats.resumes, 0u);
  EXPECT_LE(manager.resident_count(), 3u);

  for (std::size_t i = 0; i < kSessions; ++i) {
    manager.wait(manager.submit(ids[i], 1000));
    expect_identical(manager.min_plus_one_result(ids[i]),
                     standalone_min_plus(min_plus_spec(i)));
  }
}

}  // namespace
