// Property tests for the SIMD/SoA layer (DESIGN.md §10).
//
// The whole layer rests on one contract: the vector kernels, the blocked
// SoA store scans built on them, and the multi-RHS solves are *identical*
// to their scalar / per-item counterparts — not close, identical. These
// tests pin that contract from four angles:
//   1. dispatching kernels vs their _scalar twins, element-exact;
//   2. SoA-mirror store scans vs the AoS linear scans, index-identical,
//      across random stores including post-quarantine and
//      duplicate-update states, with the runtime toggle both ways;
//   3. BorderedLdlt::solve(Matrix) columns vs solve(Vector), bit-exact;
//   4. KrigingSystem::query_batch vs sequential query(), including the
//      ridge-ladder path (ISSUE tolerance 1e-12; the implementation is
//      bit-identical by construction, so we assert exact equality).
#include <gtest/gtest.h>

#include <cmath>
#include <cstddef>
#include <optional>
#include <vector>

#include "dse/config.hpp"
#include "dse/sim_store.hpp"
#include "kriging/ordinary_kriging.hpp"
#include "kriging/system.hpp"
#include "kriging/variogram_model.hpp"
#include "linalg/ldlt.hpp"
#include "linalg/lu.hpp"
#include "linalg/matrix.hpp"
#include "linalg/vector.hpp"
#include "util/rng.hpp"
#include "util/simd.hpp"

namespace {

namespace d = ace::dse;
namespace simd = ace::util::simd;

/// Restores the SIMD runtime toggle on scope exit so one test cannot
/// leak a disabled backend into the rest of the suite.
class SimdToggleGuard {
 public:
  SimdToggleGuard() : saved_(simd::enabled()) {}
  ~SimdToggleGuard() { simd::set_enabled(saved_); }

 private:
  bool saved_;
};

// --- 1. kernels vs scalar twins ------------------------------------------

TEST(SimdKernels, DispatchMatchesScalarTwinExactly) {
  SimdToggleGuard guard;
  simd::set_enabled(true);
  ace::util::Rng rng(11);
  // Odd counts and dims exercise the vector-width tail on every kernel.
  for (const std::size_t count : {1u, 4u, 7u, 33u, 130u}) {
    for (const std::size_t dim : {1u, 3u, 10u}) {
      std::vector<std::vector<int>> icols(dim, std::vector<int>(count));
      std::vector<std::vector<double>> fcols(dim,
                                             std::vector<double>(count));
      for (std::size_t c = 0; c < dim; ++c)
        for (std::size_t i = 0; i < count; ++i) {
          icols[c][i] = rng.uniform_int(-20, 20);
          fcols[c][i] = rng.uniform(-8.0, 8.0);
        }
      std::vector<const int*> iptrs(dim);
      std::vector<const double*> fptrs(dim);
      for (std::size_t c = 0; c < dim; ++c) {
        iptrs[c] = icols[c].data();
        fptrs[c] = fcols[c].data();
      }
      std::vector<int> iquery(dim);
      std::vector<double> fquery(dim);
      for (std::size_t c = 0; c < dim; ++c) {
        iquery[c] = rng.uniform_int(-20, 20);
        fquery[c] = rng.uniform(-8.0, 8.0);
      }

      std::vector<int> l1i(count), l1i_ref(count);
      simd::l1_distances_i32(iptrs.data(), dim, iquery.data(), count,
                             l1i.data());
      simd::l1_distances_i32_scalar(iptrs.data(), dim, iquery.data(), count,
                                    l1i_ref.data());
      EXPECT_EQ(l1i, l1i_ref) << "count=" << count << " dim=" << dim;

      std::vector<double> l2i(count), l2i_ref(count);
      simd::l2_sq_distances_i32(iptrs.data(), dim, iquery.data(), count,
                                l2i.data());
      simd::l2_sq_distances_i32_scalar(iptrs.data(), dim, iquery.data(),
                                       count, l2i_ref.data());
      EXPECT_EQ(l2i, l2i_ref) << "count=" << count << " dim=" << dim;

      std::vector<double> l1f(count), l1f_ref(count);
      simd::l1_distances_f64(fptrs.data(), dim, fquery.data(), count,
                             l1f.data());
      simd::l1_distances_f64_scalar(fptrs.data(), dim, fquery.data(), count,
                                    l1f_ref.data());
      EXPECT_EQ(l1f, l1f_ref) << "count=" << count << " dim=" << dim;

      std::vector<double> l2f(count), l2f_ref(count);
      simd::l2_distances_f64(fptrs.data(), dim, fquery.data(), count,
                             l2f.data());
      simd::l2_distances_f64_scalar(fptrs.data(), dim, fquery.data(), count,
                                    l2f_ref.data());
      EXPECT_EQ(l2f, l2f_ref) << "count=" << count << " dim=" << dim;
    }
  }
}

TEST(SimdKernels, DisabledToggleFallsBackToScalar) {
  SimdToggleGuard guard;
  ace::util::Rng rng(12);
  constexpr std::size_t dim = 5, count = 19;
  std::vector<std::vector<int>> cols(dim, std::vector<int>(count));
  for (auto& c : cols)
    for (auto& x : c) x = rng.uniform_int(0, 16);
  std::vector<const int*> ptrs(dim);
  for (std::size_t c = 0; c < dim; ++c) ptrs[c] = cols[c].data();
  const std::vector<int> query(dim, 8);

  std::vector<int> on(count), off(count);
  simd::set_enabled(true);
  simd::l1_distances_i32(ptrs.data(), dim, query.data(), count, on.data());
  simd::set_enabled(false);
  simd::l1_distances_i32(ptrs.data(), dim, query.data(), count, off.data());
  EXPECT_EQ(on, off);
}

// --- 2. SoA store scans vs AoS linear scans ------------------------------

/// A store driven through the full mutation surface: adds, duplicate
/// updates (value refresh, no new row), quarantines, and quarantine lifts.
void build_exercised_store(d::SimulationStore& store,
                           std::vector<d::Config>& configs,
                           unsigned seed, std::size_t n, std::size_t dim,
                           int hi) {
  ace::util::Rng rng(seed);
  while (configs.size() < n) {
    d::Config c(dim);
    for (auto& v : c) v = rng.uniform_int(0, hi);
    const bool dup = store.find(c).has_value();
    if (!dup && rng.uniform() < 0.15) {
      // Quarantine first; a later clean add must lift it and still index
      // the point correctly in both layouts.
      store.quarantine(c, d::FaultCode::kTimeout);
      if (rng.uniform() < 0.5) continue;  // Some stay quarantined unadded.
    }
    const std::size_t idx = store.add(d::Config(c), rng.uniform(-60.0, -20.0));
    if (dup) {
      EXPECT_EQ(configs[idx], c);  // Update-in-place, not a new row.
      continue;
    }
    configs.push_back(std::move(c));
  }
  // A few more duplicate updates on settled rows.
  for (int k = 0; k < 10 && !configs.empty(); ++k) {
    const auto i = static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<int>(configs.size()) - 1));
    EXPECT_EQ(store.add(d::Config(configs[i]), rng.uniform(-60.0, -20.0)), i);
  }
  ASSERT_EQ(store.size(), configs.size());
}

TEST(SimdStore, BlockedScansMatchLinearScansIndexIdentically) {
  SimdToggleGuard guard;
  for (const bool simd_on : {true, false}) {
    simd::set_enabled(simd_on);
    for (const unsigned seed : {21u, 22u, 23u}) {
      d::SimulationStore store;
      std::vector<d::Config> configs;
      // Small coordinate range → dense duplicates; dim 4 keeps the
      // brute-force reference cheap.
      build_exercised_store(store, configs, seed, 120, 4, 6);

      ace::util::Rng rng(seed + 100);
      for (int q = 0; q < 20; ++q) {
        d::Config query(4);
        for (auto& v : query) v = rng.uniform_int(0, 6);
        // Radii spanning the bucket walk (tight) and the blocked SoA scan
        // (band covers the store).
        for (const int radius : {0, 1, 2, 5, 10, 24}) {
          const auto fast = store.neighbors_within(query, radius);
          const auto ref = store.neighbors_within_linear(query, radius);
          EXPECT_EQ(fast.indices, ref.indices)
              << "seed=" << seed << " radius=" << radius
              << " simd=" << simd_on;
        }
        for (const double radius : {0.0, 1.0, 1.5, 3.2, 12.0}) {
          const auto fast = store.neighbors_within_l2(query, radius);
          const auto ref = store.neighbors_within_l2_linear(query, radius);
          EXPECT_EQ(fast.indices, ref.indices)
              << "seed=" << seed << " radius=" << radius
              << " simd=" << simd_on;
        }
      }
    }
  }
}

TEST(SimdStore, LinearScansMatchBruteForceDistances) {
  // Anchors the linear scans themselves to the distance definitions, so
  // the index-identity test above cannot pass by both paths being wrong.
  d::SimulationStore store;
  std::vector<d::Config> configs;
  build_exercised_store(store, configs, 31, 80, 4, 6);
  ace::util::Rng rng(131);
  for (int q = 0; q < 10; ++q) {
    d::Config query(4);
    for (auto& v : query) v = rng.uniform_int(0, 6);
    for (const int radius : {0, 2, 7}) {
      std::vector<std::size_t> expected;
      for (std::size_t i = 0; i < configs.size(); ++i)
        if (d::l1_distance(configs[i], query) <= radius)
          expected.push_back(i);
      EXPECT_EQ(store.neighbors_within_linear(query, radius).indices,
                expected);
    }
    for (const double radius : {1.0, 2.5, 6.0}) {
      std::vector<std::size_t> expected;
      for (std::size_t i = 0; i < configs.size(); ++i)
        if (d::l2_distance(configs[i], query) <= radius)
          expected.push_back(i);
      EXPECT_EQ(store.neighbors_within_l2_linear(query, radius).indices,
                expected);
    }
  }
}

// --- 3. multi-RHS solves --------------------------------------------------

TEST(MultiRhs, BorderedLdltMatrixSolveMatchesColumnSolvesBitExactly) {
  ace::util::Rng rng(41);
  constexpr std::size_t n = 9;
  // Symmetric diagonally dominant base: always factorable.
  ace::linalg::Matrix a(n, n);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j <= i; ++j) {
      const double v = i == j ? 10.0 + rng.uniform() : rng.uniform(-1.0, 1.0);
      a(i, j) = v;
      a(j, i) = v;
    }
  const ace::linalg::BorderedLdlt f(a);

  constexpr std::size_t nrhs = 5;
  ace::linalg::Matrix b(n, nrhs);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t c = 0; c < nrhs; ++c) b(i, c) = rng.uniform(-5.0, 5.0);

  const ace::linalg::Matrix x = f.solve(b);
  ASSERT_EQ(x.rows(), n);
  ASSERT_EQ(x.cols(), nrhs);
  for (std::size_t c = 0; c < nrhs; ++c) {
    const ace::linalg::Vector xc = f.solve(b.col(c));
    for (std::size_t i = 0; i < n; ++i)
      EXPECT_EQ(x(i, c), xc[i]) << "col=" << c << " row=" << i;
  }
}

TEST(MultiRhs, LuMatrixSolveMatchesColumnSolvesBitExactly) {
  ace::util::Rng rng(42);
  constexpr std::size_t n = 7;
  ace::linalg::Matrix a(n, n);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < n; ++j)
      a(i, j) = (i == j ? 8.0 : 0.0) + rng.uniform(-1.0, 1.0);
  const ace::linalg::LuDecomposition f(a);
  ASSERT_FALSE(f.singular());

  ace::linalg::Matrix b(n, 4);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t c = 0; c < 4; ++c) b(i, c) = rng.uniform(-5.0, 5.0);

  const ace::linalg::Matrix x = f.solve(b);
  for (std::size_t c = 0; c < 4; ++c) {
    const ace::linalg::Vector xc = f.solve(b.col(c));
    for (std::size_t i = 0; i < n; ++i) EXPECT_EQ(x(i, c), xc[i]);
  }
}

// --- 4. query_batch vs sequential query ----------------------------------

void expect_same_result(const std::optional<ace::kriging::KrigingResult>& a,
                        const std::optional<ace::kriging::KrigingResult>& b,
                        std::size_t i) {
  ASSERT_EQ(a.has_value(), b.has_value()) << "query " << i;
  if (!a) return;
  // ISSUE.md allows 1e-12; the implementation routes both paths through
  // the same factorization and column-wise solve, so exact equality holds.
  EXPECT_EQ(a->estimate, b->estimate) << "query " << i;
  EXPECT_EQ(a->variance, b->variance) << "query " << i;
  EXPECT_EQ(a->regularized, b->regularized) << "query " << i;
  EXPECT_EQ(a->ridge, b->ridge) << "query " << i;
  ASSERT_EQ(a->weights.size(), b->weights.size()) << "query " << i;
  for (std::size_t k = 0; k < a->weights.size(); ++k)
    EXPECT_EQ(a->weights[k], b->weights[k]) << "query " << i << " w" << k;
}

TEST(QueryBatch, MatchesSequentialQueriesExactly) {
  SimdToggleGuard guard;
  for (const bool simd_on : {true, false}) {
    simd::set_enabled(simd_on);
    ace::util::Rng rng(51);
    constexpr std::size_t support = 12, dim = 6, nq = 24;
    std::vector<std::vector<double>> pts;
    std::vector<double> vals;
    for (std::size_t i = 0; i < support; ++i) {
      std::vector<double> p(dim);
      for (auto& x : p) x = static_cast<double>(rng.uniform_int(0, 10));
      pts.push_back(std::move(p));
      vals.push_back(rng.uniform(-60.0, -20.0));
    }
    const ace::kriging::SphericalVariogram model(0.0, 10.0, 12.0);

    std::vector<std::vector<double>> queries;
    for (std::size_t q = 0; q < nq; ++q) {
      std::vector<double> x(dim);
      for (auto& v : x) v = rng.uniform(0.0, 10.0);
      queries.push_back(std::move(x));
    }

    ace::kriging::KrigingSystem batch_sys(
        ace::kriging::SystemSpec{ace::kriging::SystemKind::kOrdinary}, pts,
        vals, model);
    ace::kriging::KrigingSystem seq_sys(
        ace::kriging::SystemSpec{ace::kriging::SystemKind::kOrdinary}, pts,
        vals, model);

    const auto batch = batch_sys.query_batch(queries);
    ASSERT_EQ(batch.size(), nq);
    for (std::size_t i = 0; i < nq; ++i)
      expect_same_result(batch[i], seq_sys.query(queries[i]), i);
  }
}

TEST(QueryBatch, MatchesSequentialOnRidgeLadderPath) {
  // Duplicate support rows make Γ singular, forcing the ridge ladder; the
  // batch must climb exactly the rungs each query would climb alone.
  std::vector<std::vector<double>> pts = {
      {0.0, 0.0}, {1.0, 0.0}, {1.0, 0.0}, {0.0, 1.0}, {2.0, 2.0}};
  std::vector<double> vals = {0.0, 1.0, 1.0, 2.0, 3.0};
  const ace::kriging::LinearVariogram model(0.0, 1.0);

  std::vector<std::vector<double>> queries = {
      {0.5, 0.5}, {1.5, 1.5}, {0.0, 0.0}, {2.0, 1.0}};

  ace::kriging::KrigingSystem batch_sys(
      ace::kriging::SystemSpec{ace::kriging::SystemKind::kOrdinary}, pts,
      vals, model);
  ace::kriging::KrigingSystem seq_sys(
      ace::kriging::SystemSpec{ace::kriging::SystemKind::kOrdinary}, pts,
      vals, model);

  const auto batch = batch_sys.query_batch(queries);
  ASSERT_EQ(batch.size(), queries.size());
  for (std::size_t i = 0; i < queries.size(); ++i)
    expect_same_result(batch[i], seq_sys.query(queries[i]), i);
}

TEST(QueryBatch, EmptyAndSingletonBatches) {
  std::vector<std::vector<double>> pts = {{0.0, 0.0}, {1.0, 0.0}, {0.0, 1.0}};
  std::vector<double> vals = {0.0, 1.0, 2.0};
  const ace::kriging::LinearVariogram model(0.0, 1.0);
  ace::kriging::KrigingSystem sys(
      ace::kriging::SystemSpec{ace::kriging::SystemKind::kOrdinary}, pts,
      vals, model);
  EXPECT_TRUE(sys.query_batch({}).empty());
  const auto one = sys.query_batch({{0.5, 0.5}});
  ASSERT_EQ(one.size(), 1u);
  expect_same_result(one[0], sys.query({0.5, 0.5}), 0);
}

}  // namespace
