#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

#include "linalg/matrix.hpp"
#include "linalg/vector.hpp"

namespace {

using ace::linalg::Matrix;
using ace::linalg::Vector;

TEST(Vector, ConstructionAndAccess) {
  Vector v(3, 1.5);
  EXPECT_EQ(v.size(), 3u);
  EXPECT_DOUBLE_EQ(v[2], 1.5);
  v[1] = -2.0;
  EXPECT_DOUBLE_EQ(v[1], -2.0);
  EXPECT_THROW((void)v[3], std::out_of_range);
  Vector init{1.0, 2.0, 3.0};
  EXPECT_DOUBLE_EQ(init[1], 2.0);
}

TEST(Vector, Arithmetic) {
  Vector a{1.0, 2.0};
  Vector b{3.0, -1.0};
  EXPECT_EQ(a + b, Vector({4.0, 1.0}));
  EXPECT_EQ(a - b, Vector({-2.0, 3.0}));
  EXPECT_EQ(a * 2.0, Vector({2.0, 4.0}));
  EXPECT_EQ(2.0 * a, Vector({2.0, 4.0}));
  EXPECT_THROW((a += Vector{1.0}), std::invalid_argument);
  EXPECT_THROW((a -= Vector{1.0, 2.0, 3.0}), std::invalid_argument);
}

TEST(Vector, DotAndNorms) {
  Vector a{3.0, 4.0};
  EXPECT_DOUBLE_EQ(a.dot(a), 25.0);
  EXPECT_DOUBLE_EQ(a.norm2(), 5.0);
  EXPECT_DOUBLE_EQ(a.norm_inf(), 4.0);
  EXPECT_THROW((void)a.dot(Vector{1.0}), std::invalid_argument);
}

TEST(Matrix, ConstructionAndAccess) {
  Matrix m(2, 3, 0.5);
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 3u);
  EXPECT_FALSE(m.square());
  EXPECT_DOUBLE_EQ(m(1, 2), 0.5);
  m(0, 0) = 7.0;
  EXPECT_DOUBLE_EQ(m(0, 0), 7.0);
  EXPECT_THROW((void)m(2, 0), std::out_of_range);
  EXPECT_THROW((void)m(0, 3), std::out_of_range);
}

TEST(Matrix, InitializerListAndRagged) {
  Matrix m{{1.0, 2.0}, {3.0, 4.0}};
  EXPECT_DOUBLE_EQ(m(1, 0), 3.0);
  EXPECT_THROW((Matrix{{1.0, 2.0}, {3.0}}), std::invalid_argument);
}

TEST(Matrix, IdentityAndTranspose) {
  const Matrix eye = Matrix::identity(3);
  EXPECT_DOUBLE_EQ(eye(1, 1), 1.0);
  EXPECT_DOUBLE_EQ(eye(0, 1), 0.0);
  Matrix m{{1.0, 2.0, 3.0}, {4.0, 5.0, 6.0}};
  const Matrix t = m.transposed();
  EXPECT_EQ(t.rows(), 3u);
  EXPECT_EQ(t.cols(), 2u);
  EXPECT_DOUBLE_EQ(t(2, 1), 6.0);
}

TEST(Matrix, MatrixVectorProduct) {
  Matrix m{{1.0, 2.0}, {3.0, 4.0}};
  const Vector r = m * Vector{1.0, 1.0};
  EXPECT_DOUBLE_EQ(r[0], 3.0);
  EXPECT_DOUBLE_EQ(r[1], 7.0);
  EXPECT_THROW((void)(m * Vector{1.0}), std::invalid_argument);
}

TEST(Matrix, MatrixMatrixProduct) {
  Matrix a{{1.0, 2.0}, {3.0, 4.0}};
  Matrix b{{0.0, 1.0}, {1.0, 0.0}};
  const Matrix c = a * b;
  EXPECT_DOUBLE_EQ(c(0, 0), 2.0);
  EXPECT_DOUBLE_EQ(c(0, 1), 1.0);
  EXPECT_DOUBLE_EQ(c(1, 0), 4.0);
  EXPECT_DOUBLE_EQ(c(1, 1), 3.0);
  Matrix bad(3, 3);
  EXPECT_THROW((void)(a * bad), std::invalid_argument);
  // Identity is neutral.
  const Matrix e = a * Matrix::identity(2);
  EXPECT_EQ(e, a);
}

TEST(Matrix, ElementwiseOpsAndNorms) {
  Matrix a{{1.0, -2.0}, {3.0, 4.0}};
  Matrix b{{1.0, 1.0}, {1.0, 1.0}};
  EXPECT_DOUBLE_EQ((a + b)(0, 1), -1.0);
  EXPECT_DOUBLE_EQ((a - b)(1, 0), 2.0);
  EXPECT_DOUBLE_EQ((a * 2.0)(1, 1), 8.0);
  EXPECT_DOUBLE_EQ(a.max_abs(), 4.0);
  EXPECT_DOUBLE_EQ(a.frobenius_norm(), std::sqrt(30.0));
  EXPECT_THROW(a += Matrix(3, 3), std::invalid_argument);
}

TEST(Matrix, RowAndColumnExtraction) {
  Matrix m{{1.0, 2.0, 3.0}, {4.0, 5.0, 6.0}};
  EXPECT_EQ(m.row(1), Vector({4.0, 5.0, 6.0}));
  EXPECT_EQ(m.col(2), Vector({3.0, 6.0}));
}

}  // namespace
