#include "video/hevc_mc.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

#include "metrics/noise_power.hpp"
#include "util/rng.hpp"
#include "video/frame.hpp"

namespace {

namespace v = ace::video;

TEST(Frame, AccessAndValidation) {
  EXPECT_THROW(v::Frame(0, 4), std::invalid_argument);
  v::Frame f(3, 2, 0.5);
  EXPECT_EQ(f.width(), 3u);
  EXPECT_EQ(f.height(), 2u);
  EXPECT_DOUBLE_EQ(f.at(2, 1), 0.5);
  f.at(0, 0) = 0.75;
  EXPECT_DOUBLE_EQ(f.at(0, 0), 0.75);
  EXPECT_THROW((void)f.at(3, 0), std::out_of_range);
  EXPECT_THROW((void)f.at(0, 2), std::out_of_range);
}

TEST(SyntheticPatch, ValuesOn8BitGrid) {
  ace::util::Rng rng(20);
  const auto f = v::synthetic_patch(rng, 16, 16);
  for (std::size_t y = 0; y < 16; ++y)
    for (std::size_t x = 0; x < 16; ++x) {
      const double val = f.at(x, y);
      EXPECT_GE(val, 0.0);
      EXPECT_LT(val, 1.0);
      EXPECT_NEAR(val * 256.0, std::round(val * 256.0), 1e-9);
    }
}

TEST(LumaFilter, CoefficientsFromTheStandard) {
  // Normalized HEVC half-sample filter: {-1,4,-11,40,40,-11,4,-1}/64.
  const auto& half = v::luma_filter(2);
  EXPECT_DOUBLE_EQ(half[0], -1.0 / 64.0);
  EXPECT_DOUBLE_EQ(half[3], 40.0 / 64.0);
  EXPECT_DOUBLE_EQ(half[4], 40.0 / 64.0);
  // Each phase sums to unity (DC preserving).
  for (int phase = 0; phase < 4; ++phase) {
    double sum = 0.0;
    for (double c : v::luma_filter(phase)) sum += c;
    EXPECT_NEAR(sum, 1.0, 1e-12) << "phase " << phase;
  }
  EXPECT_THROW((void)v::luma_filter(4), std::invalid_argument);
  EXPECT_THROW((void)v::luma_filter(-1), std::invalid_argument);
}

TEST(LumaFilter, QuarterAndThreeQuarterAreMirrored) {
  const auto& q1 = v::luma_filter(1);
  const auto& q3 = v::luma_filter(3);
  for (std::size_t i = 0; i < v::kTaps; ++i)
    EXPECT_DOUBLE_EQ(q1[i], q3[v::kTaps - 1 - i]);
}

v::McJob constant_job(double value, int fx, int fy) {
  v::McJob job;
  for (std::size_t y = 0; y < v::kWindow; ++y)
    for (std::size_t x = 0; x < v::kWindow; ++x) job.window.at(x, y) = value;
  job.frac_x = fx;
  job.frac_y = fy;
  return job;
}

TEST(InterpolateReference, ConstantBlockIsPreserved) {
  for (int fx = 0; fx < 4; ++fx)
    for (int fy = 0; fy < 4; ++fy) {
      const auto out = v::interpolate_reference(constant_job(0.5, fx, fy));
      for (std::size_t y = 0; y < v::kBlockSize; ++y)
        for (std::size_t x = 0; x < v::kBlockSize; ++x)
          EXPECT_NEAR(out.at(x, y), 0.5, 1e-12)
              << "phase (" << fx << "," << fy << ")";
    }
}

TEST(InterpolateReference, IntegerPhaseCopiesCenterPixels) {
  ace::util::Rng rng(21);
  v::McJob job;
  job.window = v::synthetic_patch(rng, v::kWindow, v::kWindow);
  job.frac_x = 0;
  job.frac_y = 0;
  const auto out = v::interpolate_reference(job);
  // The copy filter has its unity tap at index 3.
  for (std::size_t y = 0; y < v::kBlockSize; ++y)
    for (std::size_t x = 0; x < v::kBlockSize; ++x)
      EXPECT_DOUBLE_EQ(out.at(x, y), job.window.at(x + 3, y + 3));
}

TEST(InterpolateReference, LinearRampIsInterpolatedExactly) {
  // 8-tap DCT-IF filters reproduce affine signals: a horizontal ramp
  // shifted by a quarter sample stays a ramp with offset 0.25.
  v::McJob job;
  for (std::size_t y = 0; y < v::kWindow; ++y)
    for (std::size_t x = 0; x < v::kWindow; ++x)
      job.window.at(x, y) = 0.01 * static_cast<double>(x);
  job.frac_x = 2;  // Half-sample shift.
  job.frac_y = 0;
  const auto out = v::interpolate_reference(job);
  for (std::size_t x = 0; x < v::kBlockSize; ++x)
    EXPECT_NEAR(out.at(x, 0), 0.01 * (static_cast<double>(x) + 3.5), 1e-9);
}

TEST(SyntheticJobs, DeterministicAndNonTrivialPhases) {
  ace::util::Rng a(22), b(22);
  const auto j1 = v::synthetic_jobs(a, 10);
  const auto j2 = v::synthetic_jobs(b, 10);
  ASSERT_EQ(j1.size(), 10u);
  for (std::size_t i = 0; i < 10; ++i) {
    EXPECT_EQ(j1[i].frac_x, j2[i].frac_x);
    EXPECT_EQ(j1[i].frac_y, j2[i].frac_y);
    EXPECT_FALSE(j1[i].frac_x == 0 && j1[i].frac_y == 0);
    EXPECT_DOUBLE_EQ(j1[i].window.at(5, 5), j2[i].window.at(5, 5));
  }
  EXPECT_THROW((void)v::synthetic_jobs(a, 0), std::invalid_argument);
}

TEST(QuantizedMc, ValidationAndSiteCount) {
  ace::util::Rng rng(23);
  const auto jobs = v::synthetic_jobs(rng, 4);
  const v::QuantizedMotionCompensation q(jobs);
  EXPECT_EQ(q.site_integer_bits().size(), v::kMcSites);
  EXPECT_THROW(v::QuantizedMotionCompensation({}), std::invalid_argument);
  EXPECT_THROW((void)q.interpolate(jobs[0], std::vector<int>(10, 12)),
               std::invalid_argument);
  EXPECT_THROW((void)q.interpolate(jobs[0], std::vector<int>(23, 1)),
               std::invalid_argument);
}

TEST(QuantizedMc, WideWordsConvergeToReference) {
  ace::util::Rng rng(24);
  const auto jobs = v::synthetic_jobs(rng, 4);
  const v::QuantizedMotionCompensation q(jobs);
  const std::vector<int> wide(v::kMcSites, 36);
  for (const auto& job : jobs) {
    const auto ref = v::interpolate_reference(job);
    const auto approx = q.interpolate(job, wide);
    for (std::size_t y = 0; y < v::kBlockSize; ++y)
      for (std::size_t x = 0; x < v::kBlockSize; ++x)
        EXPECT_NEAR(approx.at(x, y), ref.at(x, y), 1e-8);
  }
}

class McMonotoneTest : public ::testing::TestWithParam<int> {};

TEST_P(McMonotoneTest, NoiseShrinksWithWiderWords) {
  const int w = GetParam();
  ace::util::Rng rng(25);
  const auto jobs = v::synthetic_jobs(rng, 6);
  const v::QuantizedMotionCompensation q(jobs);
  auto total_power = [&](int width) {
    std::vector<double> approx, ref;
    for (const auto& job : jobs) {
      const auto a = q.interpolate(job, std::vector<int>(v::kMcSites, width));
      const auto r = v::interpolate_reference(job);
      for (std::size_t y = 0; y < v::kBlockSize; ++y)
        for (std::size_t x = 0; x < v::kBlockSize; ++x) {
          approx.push_back(a.at(x, y));
          ref.push_back(r.at(x, y));
        }
    }
    return ace::metrics::noise_power(approx, ref);
  };
  EXPECT_LT(total_power(w + 4), total_power(w));
}

INSTANTIATE_TEST_SUITE_P(Widths, McMonotoneTest,
                         ::testing::Values(6, 8, 10, 12));

TEST(QuantizedMc, Deterministic) {
  ace::util::Rng rng(26);
  const auto jobs = v::synthetic_jobs(rng, 2);
  const v::QuantizedMotionCompensation q(jobs);
  const std::vector<int> w(v::kMcSites, 10);
  const auto a = q.interpolate(jobs[0], w);
  const auto b = q.interpolate(jobs[0], w);
  for (std::size_t y = 0; y < v::kBlockSize; ++y)
    for (std::size_t x = 0; x < v::kBlockSize; ++x)
      EXPECT_EQ(a.at(x, y), b.at(x, y));
}

}  // namespace
