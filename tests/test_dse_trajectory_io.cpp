#include "dse/trajectory_io.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "dse/fault.hpp"

namespace {

namespace d = ace::dse;

d::Trajectory sample_trajectory() {
  d::Trajectory t;
  t.configs = {{16, 16}, {15, 16}, {15, 15}};
  t.values = {90.25, 84.5, -3.75e-2};
  return t;
}

std::string temp_path(const char* name) {
  return testing::TempDir() + "/" + name;
}

TEST(TrajectoryIo, RoundTripPreservesEverything) {
  const auto path = temp_path("traj_roundtrip.csv");
  const auto original = sample_trajectory();
  d::save_trajectory(original, path);
  const auto loaded = d::load_trajectory(path);
  ASSERT_EQ(loaded.size(), original.size());
  for (std::size_t i = 0; i < original.size(); ++i) {
    EXPECT_EQ(loaded.configs[i], original.configs[i]);
    EXPECT_DOUBLE_EQ(loaded.values[i], original.values[i]);
  }
  std::remove(path.c_str());
}

TEST(TrajectoryIo, SaveValidation) {
  const auto path = temp_path("traj_invalid.csv");
  d::Trajectory empty;
  EXPECT_THROW(d::save_trajectory(empty, path), std::invalid_argument);
  d::Trajectory ragged;
  ragged.configs = {{1, 2}};
  EXPECT_THROW(d::save_trajectory(ragged, path), std::invalid_argument);
  d::Trajectory mixed;
  mixed.configs = {{1, 2}, {1}};
  mixed.values = {1.0, 2.0};
  EXPECT_THROW(d::save_trajectory(mixed, path), std::invalid_argument);
  EXPECT_THROW(
      d::save_trajectory(sample_trajectory(), "/no-such-dir-xyz/t.csv"),
      std::runtime_error);
}

TEST(TrajectoryIo, LoadRejectsMissingFileAndBadContent) {
  EXPECT_THROW((void)d::load_trajectory("/no-such-file-xyz.csv"),
               std::runtime_error);

  const auto path = temp_path("traj_bad.csv");
  {
    std::ofstream out(path);
    out << "e0,e1,lambda\n";
    out << "1,2\n";  // Ragged.
  }
  EXPECT_THROW((void)d::load_trajectory(path), std::runtime_error);
  {
    std::ofstream out(path);
    out << "e0,lambda\n";
    out << "abc,1.5\n";  // Non-numeric.
  }
  EXPECT_THROW((void)d::load_trajectory(path), std::runtime_error);
  {
    std::ofstream out(path);
    out << "lambda\n";  // Too few columns.
  }
  EXPECT_THROW((void)d::load_trajectory(path), std::runtime_error);
  std::remove(path.c_str());
}

TEST(TrajectoryIo, LoadedTrajectoryReplaysIdentically) {
  // Replay statistics must be identical before and after a round trip.
  d::Trajectory t;
  for (int i = 0; i < 25; ++i) {
    t.configs.push_back({i, 2 * i});
    t.values.push_back(3.0 * i + 10.0);
  }
  const auto path = temp_path("traj_replay.csv");
  d::save_trajectory(t, path);
  const auto loaded = d::load_trajectory(path);

  d::PolicyOptions options;
  options.distance = 4;
  options.min_fit_points = 8;
  const auto a =
      d::replay_with_kriging(t, options, d::MetricKind::kAccuracyDb);
  const auto b =
      d::replay_with_kriging(loaded, options, d::MetricKind::kAccuracyDb);
  EXPECT_EQ(a.stats.interpolated, b.stats.interpolated);
  EXPECT_DOUBLE_EQ(a.mean_epsilon(), b.mean_epsilon());
  std::remove(path.c_str());
}

TEST(TrajectoryIo, EmptyLinesAreSkipped) {
  const auto path = temp_path("traj_blank.csv");
  {
    std::ofstream out(path);
    out << "e0,lambda\n";
    out << "3,1.5\n";
    out << "\n";
    out << "4,2.5\n";
    out << "#end rows=2\n";
  }
  const auto t = d::load_trajectory(path);
  EXPECT_EQ(t.size(), 2u);
  EXPECT_EQ(t.configs[1], (d::Config{4}));
  std::remove(path.c_str());
}

// A file cut off at a row boundary is indistinguishable from a shorter run
// without the trailer — it must fail typed, never load partially.
TEST(TrajectoryIo, TruncationIsDetectedAndTyped) {
  const auto path = temp_path("traj_truncated.csv");
  const auto original = sample_trajectory();
  d::save_trajectory(original, path);

  // Read the full file, then rewrite ever-shorter prefixes (cutting at
  // line boundaries first, then mid-line): every prefix must throw, and
  // the row-boundary cuts must classify as truncation specifically.
  std::string full;
  {
    std::ifstream in(path);
    std::ostringstream buffer;
    buffer << in.rdbuf();
    full = buffer.str();
  }
  // Drop the trailer line.
  {
    std::ofstream out(path);
    out << full.substr(0, full.rfind("#end"));
  }
  try {
    (void)d::load_trajectory(path);
    FAIL() << "trailer-less file loaded";
  } catch (const d::PayloadError& error) {
    EXPECT_EQ(error.code(), d::FaultCode::kTruncatedPayload);
  }
  // Drop the last data row as well: the trailer row-count check fires.
  {
    std::string cut = full.substr(0, full.rfind("#end"));
    cut = cut.substr(0, cut.rfind("15,15"));
    std::ofstream out(path);
    out << cut << "#end rows=3\n";
  }
  try {
    (void)d::load_trajectory(path);
    FAIL() << "row-count mismatch loaded";
  } catch (const d::PayloadError& error) {
    EXPECT_EQ(error.code(), d::FaultCode::kTruncatedPayload);
  }
  // Cut mid-row: a ragged final line is truncation too.
  {
    std::ofstream out(path);
    out << "e0,e1,lambda\n16,16,90.25\n15,\n";
  }
  try {
    (void)d::load_trajectory(path);
    FAIL() << "mid-row cut loaded";
  } catch (const d::PayloadError& error) {
    EXPECT_EQ(error.code(), d::FaultCode::kTruncatedPayload);
  }
  std::remove(path.c_str());
}

TEST(TrajectoryIo, CorruptionIsDetectedAndTyped) {
  const auto path = temp_path("traj_corrupt.csv");
  // Garbage cell.
  {
    std::ofstream out(path);
    out << "e0,lambda\n3,oops\n#end rows=1\n";
  }
  try {
    (void)d::load_trajectory(path);
    FAIL() << "garbage cell loaded";
  } catch (const d::PayloadError& error) {
    EXPECT_EQ(error.code(), d::FaultCode::kCorruptPayload);
  }
  // Unparseable trailer.
  {
    std::ofstream out(path);
    out << "e0,lambda\n3,1.5\n#end rows=banana\n";
  }
  try {
    (void)d::load_trajectory(path);
    FAIL() << "bad trailer loaded";
  } catch (const d::PayloadError& error) {
    EXPECT_EQ(error.code(), d::FaultCode::kCorruptPayload);
  }
  // Data after the trailer (concatenated files).
  {
    std::ofstream out(path);
    out << "e0,lambda\n3,1.5\n#end rows=1\n4,2.5\n";
  }
  try {
    (void)d::load_trajectory(path);
    FAIL() << "data after trailer loaded";
  } catch (const d::PayloadError& error) {
    EXPECT_EQ(error.code(), d::FaultCode::kCorruptPayload);
  }
  std::remove(path.c_str());
}

}  // namespace
