// Integration tests: the full Table-I pipeline on down-scaled benchmarks.
#include "core/table1.hpp"

#include <gtest/gtest.h>

#include <sstream>
#include <stdexcept>

namespace {

namespace c = ace::core;
namespace d = ace::dse;

c::ApplicationBenchmark tiny_fir() {
  c::SignalBenchOptions o;
  o.samples = 128;
  o.lambda_min_db = 45.0;
  return c::make_fir_benchmark(o);
}

TEST(Table1, Validation) {
  const auto bench = tiny_fir();
  EXPECT_THROW((void)c::run_table1(bench, {}), std::invalid_argument);
  c::ApplicationBenchmark broken = bench;
  broken.simulate = nullptr;
  EXPECT_THROW((void)c::run_table1(broken, {2}), std::invalid_argument);
}

TEST(Table1, FirPipelineProducesConsistentRows) {
  const auto bench = tiny_fir();
  const auto result = c::run_table1(bench, {2, 3, 4, 5});
  EXPECT_EQ(result.benchmark, "FIR");
  ASSERT_EQ(result.rows.size(), 4u);
  EXPECT_GT(result.trajectory.size(), 10u);
  EXPECT_GE(result.exact_lambda, bench.min_plus_one.lambda_min);

  double prev_p = -1.0;
  for (const auto& row : result.rows) {
    EXPECT_GE(row.p_percent, 0.0);
    EXPECT_LE(row.p_percent, 100.0);
    EXPECT_GE(row.eps_max, row.eps_mean);
    EXPECT_GE(row.eps_mean, 0.0);
    // p grows with d — the paper's headline trend. A small tolerance
    // absorbs second-order effects (interpolated points deplete the store).
    EXPECT_GE(row.p_percent, prev_p - 5.0);
    prev_p = row.p_percent;
    if (row.p_percent > 0.0) EXPECT_GE(row.j_mean, 2.0);
  }
}

TEST(Table1, SomeConfigurationsAreInterpolatedAtModerateDistance) {
  const auto result = c::run_table1(tiny_fir(), {3});
  ASSERT_EQ(result.rows.size(), 1u);
  EXPECT_GT(result.rows[0].p_percent, 5.0);
  EXPECT_LT(result.rows[0].eps_mean, 5.0);  // Bits: sane interpolation.
}

TEST(Table1, PrintProducesPaperLikeLayout) {
  const auto result = c::run_table1(tiny_fir(), {2, 3});
  std::ostringstream ss;
  c::print_table1(ss, result);
  const std::string out = ss.str();
  EXPECT_NE(out.find("FIR"), std::string::npos);
  EXPECT_NE(out.find("p(%)"), std::string::npos);
  EXPECT_NE(out.find("bits"), std::string::npos);
}

TEST(Table1, TrajectoryHasNoDuplicateConfigs) {
  const auto result = c::run_table1(tiny_fir(), {2});
  const auto& t = result.trajectory;
  for (std::size_t i = 0; i < t.size(); ++i)
    for (std::size_t j = i + 1; j < t.size(); ++j)
      EXPECT_NE(t.configs[i], t.configs[j]) << i << " vs " << j;
}

TEST(MeasureSpeedup, ReportsConsistentNumbers) {
  const auto bench = tiny_fir();
  const auto result = c::run_table1(bench, {3});
  const auto timing = c::measure_speedup(bench, result, 3);
  EXPECT_GT(timing.sim_seconds, 0.0);
  EXPECT_GE(timing.krig_seconds, 0.0);
  EXPECT_GE(timing.p, 0.0);
  EXPECT_LE(timing.p, 1.0);
#ifdef NDEBUG
  // Interpolation is cheaper than sim — but only in optimized builds; in
  // Debug the contract checks dominate this micro-sized workload and the
  // wall-clock ratio is meaningless.
  EXPECT_GE(timing.speedup, 1.0);
#endif
  EXPECT_THROW((void)c::measure_speedup(bench, result, 99),
               std::invalid_argument);
}

TEST(DecisionDivergence, KrigingRunStaysCloseToExact) {
  const auto bench = tiny_fir();
  d::PolicyOptions options;
  options.distance = 2;
  const auto report = c::run_decision_divergence(bench, options);
  EXPECT_EQ(report.exact_result.size(), 2u);
  EXPECT_EQ(report.kriging_result.size(), 2u);
  EXPECT_GE(report.diverging_percent, 0.0);
  EXPECT_LE(report.diverging_percent, 100.0);
  // The paper: the final result stays similar; allow a loose bound here.
  EXPECT_LE(report.result_l1_gap, 8);
  EXPECT_GT(report.stats.total, 0u);
}

TEST(Table1, IirPipelineRunsEndToEnd) {
  c::SignalBenchOptions o;
  o.samples = 128;
  o.lambda_min_db = 40.0;
  const auto bench = c::make_iir_benchmark(o);
  const auto result = c::run_table1(bench, {2, 4});
  ASSERT_EQ(result.rows.size(), 2u);
  EXPECT_GT(result.trajectory.size(), 20u);
  EXPECT_LE(result.rows[0].p_percent, result.rows[1].p_percent + 5.0);
}

}  // namespace
