#include "kriging/ordinary_kriging.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

#include "kriging/variogram_model.hpp"

namespace {

namespace k = ace::kriging;

TEST(Krige, Validation) {
  const k::LinearVariogram model(0.0, 1.0);
  EXPECT_THROW((void)k::krige({}, {}, {0.0}, model), std::invalid_argument);
  EXPECT_THROW((void)k::krige({{0.0}}, {1.0, 2.0}, {0.0}, model),
               std::invalid_argument);
  EXPECT_THROW((void)k::krige({{0.0, 0.0}}, {1.0}, {0.0}, model),
               std::invalid_argument);
}

TEST(Krige, SingleSupportPointReturnsItsValue) {
  const k::LinearVariogram model(0.0, 1.0);
  const auto r = k::krige({{0.0}}, {7.5}, {3.0}, model);
  ASSERT_TRUE(r.has_value());
  EXPECT_NEAR(r->estimate, 7.5, 1e-9);
  EXPECT_NEAR(r->weights[0], 1.0, 1e-9);
}

TEST(Krige, ExactAtSupportPoints) {
  const k::LinearVariogram model(0.0, 0.7);
  const std::vector<std::vector<double>> pts = {{0.0}, {2.0}, {5.0}};
  const std::vector<double> vals = {1.0, -2.0, 4.0};
  for (std::size_t i = 0; i < pts.size(); ++i) {
    const auto r = k::krige(pts, vals, pts[i], model);
    ASSERT_TRUE(r.has_value());
    EXPECT_NEAR(r->estimate, vals[i], 1e-8) << "support point " << i;
    EXPECT_NEAR(r->variance, 0.0, 1e-8);
  }
}

TEST(Krige, WeightsSumToOne) {
  const k::SphericalVariogram model(0.0, 2.0, 8.0);
  const std::vector<std::vector<double>> pts = {
      {0.0, 0.0}, {1.0, 2.0}, {3.0, 1.0}, {4.0, 4.0}};
  const std::vector<double> vals = {1.0, 2.0, 0.5, -1.0};
  const auto r = k::krige(pts, vals, {2.0, 2.0}, model);
  ASSERT_TRUE(r.has_value());
  double sum = 0.0;
  for (double w : r->weights) sum += w;
  EXPECT_NEAR(sum, 1.0, 1e-9);  // Unbiasedness constraint (Eq. 6).
}

TEST(Krige, MidpointOfTwoPointsIsTheirAverage) {
  // With a symmetric variogram, the midpoint weights are (1/2, 1/2).
  const k::LinearVariogram model(0.0, 1.0);
  const auto r = k::krige({{0.0}, {4.0}}, {2.0, 6.0}, {2.0}, model);
  ASSERT_TRUE(r.has_value());
  EXPECT_NEAR(r->estimate, 4.0, 1e-9);
  EXPECT_NEAR(r->weights[0], 0.5, 1e-9);
  EXPECT_NEAR(r->weights[1], 0.5, 1e-9);
}

TEST(Krige, LinearVariogramInterpolatesLinearly1D) {
  // Classic result: ordinary kriging with a linear variogram between two
  // support points reduces to linear interpolation.
  const k::LinearVariogram model(0.0, 1.0);
  const auto r = k::krige({{0.0}, {10.0}}, {0.0, 5.0}, {3.0}, model);
  ASSERT_TRUE(r.has_value());
  EXPECT_NEAR(r->estimate, 1.5, 1e-9);
}

TEST(Krige, CloserPointGetsLargerWeight) {
  const k::ExponentialVariogram model(0.0, 1.0, 5.0);
  const auto r = k::krige({{1.0}, {9.0}}, {10.0, 20.0}, {2.0}, model);
  ASSERT_TRUE(r.has_value());
  EXPECT_GT(r->weights[0], r->weights[1]);
  EXPECT_GT(r->estimate, 10.0);
  EXPECT_LT(r->estimate, 20.0);
}

TEST(Krige, DegenerateVariogramFallsBackViaRidge) {
  // γ ≡ 0 makes the core of Γ all-zero: the ridge fallback yields equal
  // weights (the support mean) instead of failing.
  const k::LinearVariogram model(0.0, 0.0);
  const auto r = k::krige({{0.0}, {1.0}, {2.0}}, {3.0, 6.0, 9.0},
                          {1.0}, model);
  ASSERT_TRUE(r.has_value());
  EXPECT_TRUE(r->regularized);
  EXPECT_NEAR(r->estimate, 6.0, 1e-6);
}

TEST(Krige, DuplicateSupportPointsAreHandled) {
  const k::LinearVariogram model(0.0, 1.0);
  // Two identical support points make Γ singular; ridge rescues.
  const auto r =
      k::krige({{0.0}, {0.0}, {4.0}}, {2.0, 2.0, 6.0}, {2.0}, model);
  ASSERT_TRUE(r.has_value());
  EXPECT_NEAR(r->estimate, 4.0, 0.1);
}

TEST(Krige, VarianceGrowsWithDistanceFromSupport) {
  const k::LinearVariogram model(0.0, 1.0);
  const std::vector<std::vector<double>> pts = {{0.0}, {1.0}};
  const std::vector<double> vals = {1.0, 2.0};
  const auto near = k::krige(pts, vals, {0.5}, model);
  const auto far = k::krige(pts, vals, {10.0}, model);
  ASSERT_TRUE(near.has_value());
  ASSERT_TRUE(far.has_value());
  EXPECT_GT(far->variance, near->variance);
}

TEST(OrdinaryKriging, ReusableEstimatorMatchesOneShot) {
  const k::SphericalVariogram model(0.1, 1.0, 6.0);
  const std::vector<std::vector<double>> pts = {{0.0, 1.0}, {2.0, 0.0},
                                                {1.0, 3.0}};
  const std::vector<double> vals = {1.0, 4.0, -2.0};
  const k::OrdinaryKriging estimator(pts, vals, model);
  EXPECT_EQ(estimator.support_size(), 3u);
  for (const auto& q : std::vector<std::vector<double>>{
           {1.0, 1.0}, {0.0, 0.0}, {2.0, 2.0}}) {
    const auto a = estimator.estimate(q);
    const auto b = k::krige(pts, vals, q, model);
    ASSERT_TRUE(a.has_value());
    ASSERT_TRUE(b.has_value());
    EXPECT_NEAR(a->estimate, b->estimate, 1e-12);
  }
}

TEST(OrdinaryKriging, ConstructorValidation) {
  const k::LinearVariogram model(0.0, 1.0);
  EXPECT_THROW(k::OrdinaryKriging({}, {}, model), std::invalid_argument);
  EXPECT_THROW(k::OrdinaryKriging({{0.0}}, {1.0, 2.0}, model),
               std::invalid_argument);
  EXPECT_THROW(k::OrdinaryKriging({{0.0}, {1.0, 2.0}}, {1.0, 2.0}, model),
               std::invalid_argument);
}

TEST(Krige, QueryDimensionMismatchThrows) {
  const k::LinearVariogram model(0.0, 1.0);
  EXPECT_THROW((void)k::krige({{0.0, 0.0}}, {1.0}, {0.0}, model),
               std::invalid_argument);
}

}  // namespace
