// Compiled with -DACE_CONTRACTS=1 (see tests/CMakeLists.txt): the contract
// macros are active in this translation unit regardless of build type, so
// the firing behaviour is testable even from a Release build.
#include "util/contract.hpp"

#include <gtest/gtest.h>

static_assert(ACE_CONTRACTS_ENABLED == 1,
              "this TU must be compiled with contracts forced on");

namespace {

using ace::util::ContractViolation;

TEST(ContractsForceOn, RequireFiresOnFalse) {
  const int n = -1;
  EXPECT_THROW(ACE_REQUIRE(n > 0), ContractViolation);
  EXPECT_THROW(ACE_REQUIRE(n > 0, "n must be positive"), ContractViolation);
}

TEST(ContractsForceOn, AllKindsPassOnTrue) {
  EXPECT_NO_THROW(ACE_REQUIRE(1 + 1 == 2));
  EXPECT_NO_THROW(ACE_ENSURE(2 * 2 == 4, "arithmetic works"));
  EXPECT_NO_THROW(ACE_INVARIANT(true));
}

TEST(ContractsForceOn, KindAndDetailAreReported) {
  try {
    ACE_ENSURE(false, "the detail string");
    FAIL() << "ACE_ENSURE(false) did not throw";
  } catch (const ContractViolation& e) {
    EXPECT_EQ(e.kind(), ContractViolation::Kind::kEnsure);
    EXPECT_STREQ(e.condition(), "false");
    EXPECT_NE(std::string(e.what()).find("the detail string"),
              std::string::npos);
  }
  try {
    ACE_INVARIANT(false);
    FAIL() << "ACE_INVARIANT(false) did not throw";
  } catch (const ContractViolation& e) {
    EXPECT_EQ(e.kind(), ContractViolation::Kind::kInvariant);
  }
}

TEST(ContractsForceOn, ConditionEvaluatedExactlyOnce) {
  int evaluations = 0;
  const auto count = [&] {
    ++evaluations;
    return true;
  };
  ACE_REQUIRE(count());
  EXPECT_EQ(evaluations, 1);
}

}  // namespace
