#include "linalg/lu.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

#include "util/rng.hpp"

namespace {

using ace::linalg::LuDecomposition;
using ace::linalg::Matrix;
using ace::linalg::Vector;

Matrix random_matrix(ace::util::Rng& rng, std::size_t n) {
  Matrix m(n, n);
  for (std::size_t r = 0; r < n; ++r)
    for (std::size_t c = 0; c < n; ++c) m(r, c) = rng.uniform(-2.0, 2.0);
  // Diagonal boost keeps the random systems comfortably non-singular.
  for (std::size_t i = 0; i < n; ++i) m(i, i) += 3.0;
  return m;
}

TEST(Lu, RejectsNonSquare) {
  EXPECT_THROW(LuDecomposition(Matrix(2, 3)), std::invalid_argument);
}

TEST(Lu, SolvesKnownSystem) {
  // 2x + y = 5 ; x + 3y = 10  =>  x = 1, y = 3.
  Matrix a{{2.0, 1.0}, {1.0, 3.0}};
  LuDecomposition lu(a);
  ASSERT_FALSE(lu.singular());
  const Vector x = lu.solve(Vector{5.0, 10.0});
  EXPECT_NEAR(x[0], 1.0, 1e-12);
  EXPECT_NEAR(x[1], 3.0, 1e-12);
}

TEST(Lu, PivotingHandlesZeroLeadingDiagonal) {
  Matrix a{{0.0, 1.0}, {1.0, 0.0}};  // Permutation matrix.
  LuDecomposition lu(a);
  ASSERT_FALSE(lu.singular());
  const Vector x = lu.solve(Vector{2.0, 7.0});
  EXPECT_NEAR(x[0], 7.0, 1e-12);
  EXPECT_NEAR(x[1], 2.0, 1e-12);
  EXPECT_NEAR(lu.determinant(), -1.0, 1e-12);
}

TEST(Lu, DetectsSingularMatrix) {
  Matrix a{{1.0, 2.0}, {2.0, 4.0}};
  LuDecomposition lu(a);
  EXPECT_TRUE(lu.singular());
  EXPECT_DOUBLE_EQ(lu.determinant(), 0.0);
  EXPECT_DOUBLE_EQ(lu.rcond_estimate(), 0.0);
  EXPECT_THROW((void)lu.solve(Vector{1.0, 1.0}), std::runtime_error);
}

TEST(Lu, DeterminantOfDiagonal) {
  Matrix a{{2.0, 0.0, 0.0}, {0.0, 3.0, 0.0}, {0.0, 0.0, 4.0}};
  EXPECT_NEAR(LuDecomposition(a).determinant(), 24.0, 1e-12);
}

TEST(Lu, SolveSizeMismatchThrows) {
  LuDecomposition lu(Matrix::identity(3));
  EXPECT_THROW((void)lu.solve(Vector{1.0, 2.0}), std::invalid_argument);
}

TEST(Lu, InverseTimesOriginalIsIdentity) {
  ace::util::Rng rng(17);
  const Matrix a = random_matrix(rng, 5);
  const Matrix inv = LuDecomposition(a).inverse();
  const Matrix prod = a * inv;
  for (std::size_t r = 0; r < 5; ++r)
    for (std::size_t c = 0; c < 5; ++c)
      EXPECT_NEAR(prod(r, c), r == c ? 1.0 : 0.0, 1e-9);
}

TEST(Lu, MultipleRightHandSides) {
  Matrix a{{2.0, 0.0}, {0.0, 4.0}};
  Matrix b{{2.0, 4.0}, {4.0, 8.0}};
  const Matrix x = LuDecomposition(a).solve(b);
  EXPECT_NEAR(x(0, 0), 1.0, 1e-12);
  EXPECT_NEAR(x(0, 1), 2.0, 1e-12);
  EXPECT_NEAR(x(1, 0), 1.0, 1e-12);
  EXPECT_NEAR(x(1, 1), 2.0, 1e-12);
}

TEST(Lu, InverseDiagonalMatchesFullInverse) {
  ace::util::Rng rng(29);
  const Matrix a = random_matrix(rng, 6);
  const LuDecomposition lu(a);
  const Matrix inv = lu.inverse();
  const Vector diag = lu.inverse_diagonal();
  ASSERT_EQ(diag.size(), 6u);
  // Both walk the same unit-vector solves, so the match is exact.
  for (std::size_t i = 0; i < 6; ++i) EXPECT_EQ(diag[i], inv(i, i));
}

TEST(Lu, InverseDiagonalMatchesSchurComplementOfDeletedSystems) {
  // The identity behind the kriging LOO-CV fast path: 1/[A⁻¹]_ii equals
  // the Schur complement A_ii − A_i,−i · A₋ᵢ⁻¹ · A₋ᵢ,i of the system
  // with row/column i deleted — n scratch refits in one factorization.
  ace::util::Rng rng(33);
  const std::size_t n = 7;
  const Matrix a = random_matrix(rng, n);
  const Vector diag = LuDecomposition(a).inverse_diagonal();
  for (std::size_t i = 0; i < n; ++i) {
    Matrix deleted(n - 1, n - 1);
    Vector col(n - 1);
    Vector row(n - 1);
    for (std::size_t r = 0, dr = 0; r < n; ++r) {
      if (r == i) continue;
      col[dr] = a(r, i);
      row[dr] = a(i, r);
      for (std::size_t c = 0, dc = 0; c < n; ++c) {
        if (c == i) continue;
        deleted(dr, dc) = a(r, c);
        ++dc;
      }
      ++dr;
    }
    const Vector x = LuDecomposition(deleted).solve(col);
    double schur = a(i, i);
    for (std::size_t k = 0; k < n - 1; ++k) schur -= row[k] * x[k];
    EXPECT_NEAR(diag[i], 1.0 / schur, 1e-10) << "entry " << i;
  }
}

TEST(Lu, RcondEstimatePositiveForWellConditioned) {
  EXPECT_GT(LuDecomposition(Matrix::identity(4)).rcond_estimate(), 0.5);
}

/// Property sweep: residual ‖Ax − b‖∞ stays tiny across sizes and seeds.
class LuResidualTest
    : public ::testing::TestWithParam<std::tuple<std::size_t, std::uint64_t>> {};

TEST_P(LuResidualTest, ResidualIsSmall) {
  const auto [n, seed] = GetParam();
  ace::util::Rng rng(seed);
  const Matrix a = random_matrix(rng, n);
  Vector b(n);
  for (std::size_t i = 0; i < n; ++i) b[i] = rng.uniform(-5.0, 5.0);
  LuDecomposition lu(a);
  ASSERT_FALSE(lu.singular());
  const Vector x = lu.solve(b);
  const Vector residual = a * x - b;
  EXPECT_LT(residual.norm_inf(), 1e-9);
  // det(A) consistency: det should be finite and nonzero.
  EXPECT_NE(lu.determinant(), 0.0);
}

INSTANTIATE_TEST_SUITE_P(
    SizesAndSeeds, LuResidualTest,
    ::testing::Combine(::testing::Values<std::size_t>(1, 2, 3, 5, 8, 13, 21),
                       ::testing::Values<std::uint64_t>(1, 2, 3, 4, 5)));

}  // namespace
