#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace {

using ace::util::Rng;

TEST(Rng, SameSeedSameStream) {
  Rng a(99), b(99);
  for (int i = 0; i < 100; ++i)
    EXPECT_DOUBLE_EQ(a.uniform(), b.uniform());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i)
    if (a.uniform() == b.uniform()) ++same;
  EXPECT_LT(same, 5);
}

TEST(Rng, UniformRespectsBounds) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.uniform(-2.0, 3.0);
    EXPECT_GE(x, -2.0);
    EXPECT_LT(x, 3.0);
  }
}

TEST(Rng, UniformIntInclusiveBounds) {
  Rng rng(7);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const int v = rng.uniform_int(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= v == -3;
    saw_hi |= v == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, IndexBoundsAndError) {
  Rng rng(5);
  for (int i = 0; i < 500; ++i) EXPECT_LT(rng.index(10), 10u);
  EXPECT_THROW((void)rng.index(0), std::invalid_argument);
}

TEST(Rng, NormalMoments) {
  Rng rng(11);
  double sum = 0.0, sum_sq = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal(2.0, 3.0);
    sum += x;
    sum_sq += x * x;
  }
  const double mean = sum / n;
  const double var = sum_sq / n - mean * mean;
  EXPECT_NEAR(mean, 2.0, 0.1);
  EXPECT_NEAR(var, 9.0, 0.5);
}

TEST(Rng, BernoulliFrequency) {
  Rng rng(13);
  int hits = 0;
  for (int i = 0; i < 10000; ++i)
    if (rng.bernoulli(0.3)) ++hits;
  EXPECT_NEAR(hits / 10000.0, 0.3, 0.03);
}

TEST(Rng, VectorsHaveRequestedSize) {
  Rng rng(3);
  EXPECT_EQ(rng.uniform_vector(17).size(), 17u);
  EXPECT_EQ(rng.normal_vector(9).size(), 9u);
  EXPECT_TRUE(rng.uniform_vector(0).empty());
}

TEST(Rng, ForkStreamsAreDecoupled) {
  Rng parent(42);
  Rng c1 = parent.fork();
  Rng c2 = parent.fork();
  // Children differ from each other.
  int same = 0;
  for (int i = 0; i < 100; ++i)
    if (c1.uniform() == c2.uniform()) ++same;
  EXPECT_LT(same, 5);
  // Forking is deterministic given the parent seed.
  Rng parent2(42);
  Rng c1b = parent2.fork();
  Rng c1_ref = Rng(42).fork();
  for (int i = 0; i < 20; ++i)
    EXPECT_DOUBLE_EQ(c1b.uniform(), c1_ref.uniform());
}

}  // namespace
