// SessionManager: the multi-session service must leave every session's
// decision sequence bit-identical to running that session standalone —
// through queueing, interleaving on service threads, and park/resume.
#include "serve/session.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstddef>
#include <vector>

#include "dse/min_plus_one.hpp"
#include "dse/scheduler.hpp"
#include "dse/steepest_descent.hpp"
#include "util/thread_pool.hpp"

namespace {

namespace d = ace::dse;
namespace s = ace::serve;

/// Deterministic smooth surface, parameterized so each session sees a
/// different (but reproducible) landscape.
d::SimulatorFn make_surface(std::size_t salt) {
  return [salt](const d::Config& c) {
    double acc = 0.0;
    for (std::size_t i = 0; i < c.size(); ++i)
      acc += (1.0 + 0.07 * static_cast<double>((i + salt) % 5)) *
             static_cast<double>(c[i]);
    return acc + 0.01 * static_cast<double>(salt % 11);
  };
}

s::SessionSpec min_plus_spec(std::size_t salt) {
  s::SessionSpec spec;
  spec.name = "min+1 #" + std::to_string(salt);
  spec.policy.factor_cache_capacity = 4;
  spec.optimizer = s::OptimizerKind::kMinPlusOne;
  spec.min_plus.nv = 3;
  spec.min_plus.w_max = 10;
  spec.min_plus.w_min = 2;
  spec.min_plus.lambda_min = 18.0 + static_cast<double>(salt % 4);
  spec.simulate = make_surface(salt);
  return spec;
}

/// Standalone reference: run the same spec to completion with a fresh
/// policy — the bit-identity baseline for every service-side run.
d::MinPlusOneResult standalone_min_plus(const s::SessionSpec& spec) {
  d::KrigingPolicy policy(spec.policy);
  const auto evaluate = d::policy_batch_evaluator(policy, spec.simulate);
  d::MinPlusOneCursor cursor = d::make_min_plus_one_cursor(spec.min_plus);
  while (d::min_plus_one_step(evaluate, spec.min_plus, cursor)) {
  }
  return d::min_plus_one_result(cursor, spec.min_plus);
}

void expect_identical(const d::MinPlusOneResult& a,
                      const d::MinPlusOneResult& b) {
  EXPECT_EQ(a.decisions, b.decisions);
  EXPECT_EQ(a.w_min, b.w_min);
  EXPECT_EQ(a.w_res, b.w_res);
  EXPECT_EQ(a.constraint_met, b.constraint_met);
  // Bit-identical, not approximately equal: the whole point of the
  // determinism contract.
  EXPECT_EQ(a.final_lambda, b.final_lambda);
}

TEST(SessionManager, RejectsBadSpecs) {
  s::SessionManager manager;
  s::SessionSpec no_sim = min_plus_spec(0);
  no_sim.simulate = nullptr;
  EXPECT_THROW((void)manager.create(no_sim), std::invalid_argument);
  s::SessionSpec no_nv = min_plus_spec(0);
  no_nv.min_plus.nv = 0;
  EXPECT_THROW((void)manager.create(no_nv), std::invalid_argument);
  EXPECT_THROW((void)manager.submit(42, 1), std::out_of_range);
}

TEST(SessionManager, SingleSessionMatchesStandalone) {
  const s::SessionSpec spec = min_plus_spec(7);
  const d::MinPlusOneResult reference = standalone_min_plus(spec);

  s::SessionManager manager;
  const s::SessionId id = manager.create(spec);
  manager.wait(manager.submit(id, 1000));
  const s::SessionProgress progress = manager.progress(id);
  EXPECT_TRUE(progress.exists);
  EXPECT_TRUE(progress.finished);
  expect_identical(manager.min_plus_one_result(id), reference);
}

TEST(SessionManager, ChunkedStepsMatchOneShot) {
  // Driving the cursor 2 steps per request must land on the same result:
  // requests are just resumable slices of one run.
  const s::SessionSpec spec = min_plus_spec(3);
  const d::MinPlusOneResult reference = standalone_min_plus(spec);

  s::SessionManager manager;
  const s::SessionId id = manager.create(spec);
  while (!manager.progress(id).finished) manager.wait(manager.submit(id, 2));
  expect_identical(manager.min_plus_one_result(id), reference);
}

TEST(SessionManager, ParkResumeRoundTripIsBitIdentical) {
  const s::SessionSpec spec = min_plus_spec(5);
  const d::MinPlusOneResult reference = standalone_min_plus(spec);

  // Reference stats from an unparked service run of the same spec.
  s::SessionManager plain;
  const s::SessionId p = plain.create(spec);
  plain.wait(plain.submit(p, 1000));
  const d::PolicyStats unparked = plain.progress(p).stats;

  s::SessionManager manager;
  const s::SessionId id = manager.create(spec);
  manager.wait(manager.submit(id, 3));  // Partial progress.
  manager.park(id);
  EXPECT_FALSE(manager.progress(id).resident);
  EXPECT_EQ(manager.resident_count(), 0u);

  // Parked progress is still reportable (from the checkpointed cursor).
  const std::size_t steps_before = manager.progress(id).steps;
  EXPECT_GT(steps_before, 0u);

  manager.wait(manager.submit(id, 1000));  // Resume and finish.
  expect_identical(manager.min_plus_one_result(id), reference);

  // The replayed policy's statistics line up with the never-parked run —
  // parking is invisible to the evaluation stream.
  const d::PolicyStats stats = manager.progress(id).stats;
  EXPECT_EQ(stats.total, unparked.total);
  EXPECT_EQ(stats.simulated, unparked.simulated);
  EXPECT_EQ(stats.interpolated, unparked.interpolated);
  EXPECT_EQ(stats.refits, unparked.refits);
  const auto serve_stats = manager.stats();
  EXPECT_EQ(serve_stats.parks, 1u);
  EXPECT_EQ(serve_stats.resumes, 1u);
}

TEST(SessionManager, GateBearingSessionParksAndResumesWithEqualStats) {
  // A session running an adaptive acquisition gate carries online LOO
  // calibration state that the checkpoint format deliberately does not
  // persist — restore replays the recorded refits, which re-run the LOO
  // passes. Parking mid-run must therefore be invisible: the resumed
  // session's *entire* PolicyStats (gate counters and the loo_abs_error
  // moments included) equals the never-parked run's. The factor cache
  // stays off — stats equality is exactly the contract that relies on the
  // cache-off default (a resumed run's cold cache would skew counters).
  s::SessionSpec spec = min_plus_spec(9);
  spec.name = "gated min+1";
  spec.policy.factor_cache_capacity = 0;
  spec.policy.gate = d::GateKind::kLooCalibrated;
  spec.policy.gate_nn_floor = 2;
  spec.policy.loo_gate = 2.0;

  s::SessionManager plain;
  const s::SessionId p = plain.create(spec);
  plain.wait(plain.submit(p, 1000));
  ASSERT_TRUE(plain.progress(p).finished);
  const d::PolicyStats unparked = plain.progress(p).stats;

  s::SessionManager manager;
  const s::SessionId id = manager.create(spec);
  manager.wait(manager.submit(id, 3));
  manager.park(id);
  EXPECT_FALSE(manager.progress(id).resident);
  manager.wait(manager.submit(id, 2));  // Resume, then park again.
  manager.park(id);
  manager.wait(manager.submit(id, 1000));
  ASSERT_TRUE(manager.progress(id).finished);

  expect_identical(manager.min_plus_one_result(id),
                   plain.min_plus_one_result(p));
  EXPECT_TRUE(manager.progress(id).stats == unparked);
  EXPECT_EQ(manager.stats().parks, 2u);
  EXPECT_EQ(manager.stats().resumes, 2u);
}

TEST(SessionManager, LruResidencyCapParksColdSessions) {
  s::SessionManagerOptions options;
  options.service_threads = 1;
  options.resident_capacity = 2;
  s::SessionManager manager(options);

  std::vector<s::SessionId> ids;
  for (std::size_t i = 0; i < 5; ++i) {
    const s::SessionId id = manager.create(min_plus_spec(i));
    manager.wait(manager.submit(id, 1));  // Make it resident, 1 step.
    ids.push_back(id);
  }
  manager.drain();
  EXPECT_LE(manager.resident_count(), 2u);
  EXPECT_GE(manager.stats().parks, 3u);

  // Every session — parked or resident — still finishes identically.
  for (std::size_t i = 0; i < ids.size(); ++i) {
    manager.wait(manager.submit(ids[i], 1000));
    expect_identical(manager.min_plus_one_result(ids[i]),
                     standalone_min_plus(min_plus_spec(i)));
  }
}

TEST(SessionManager, ConcurrentSessionsAreEachBitIdentical) {
  // The stress knob: many sessions, few service threads, tiny queue and
  // resident cache, a shared simulation pool — maximum interleaving and
  // park/resume churn. Run under TSan/ASan by tools/run_sanitizers.sh.
  constexpr std::size_t kSessions = 12;
  ace::util::ThreadPool pool(3);
  s::SessionManagerOptions options;
  options.service_threads = 4;
  options.queue_capacity = 6;
  options.resident_capacity = 5;
  options.pool = &pool;
  s::SessionManager manager(options);

  std::vector<s::SessionId> ids;
  for (std::size_t i = 0; i < kSessions; ++i)
    ids.push_back(manager.create(min_plus_spec(i)));

  // Interleave: several rounds of small slices across all sessions, then
  // a run-to-completion round. No waits between submits inside a round,
  // so requests from different sessions overlap on the service threads.
  for (int round = 0; round < 3; ++round)
    for (const s::SessionId id : ids) (void)manager.submit(id, 2);
  for (const s::SessionId id : ids) (void)manager.submit(id, 1000);
  manager.drain();

  for (std::size_t i = 0; i < kSessions; ++i) {
    EXPECT_TRUE(manager.progress(ids[i]).finished) << "session " << i;
    expect_identical(manager.min_plus_one_result(ids[i]),
                     standalone_min_plus(min_plus_spec(i)));
  }
  const auto stats = manager.stats();
  EXPECT_EQ(stats.sessions_created, kSessions);
  EXPECT_EQ(stats.requests, kSessions * 4);
  EXPECT_EQ(manager.request_latencies_ms().size(), kSessions * 4);
  EXPECT_GT(stats.backpressure_waits, 0u);  // Queue of 6 vs 48 requests.
}

TEST(SessionManager, SteepestDescentSessionsWork) {
  s::SessionSpec spec;
  spec.name = "budgeting";
  spec.optimizer = s::OptimizerKind::kSteepestDescent;
  spec.sensitivity.nv = 3;
  spec.sensitivity.level_min = 0;
  spec.sensitivity.level_max = 6;
  spec.sensitivity.lambda_min = 4.0;
  spec.simulate = [](const d::Config& c) {
    double acc = 0.0;
    for (std::size_t i = 0; i < c.size(); ++i)
      acc += 0.5 * static_cast<double>(c[i]);
    return acc;
  };

  // Standalone reference.
  d::KrigingPolicy policy(spec.policy);
  const auto evaluate = d::policy_batch_evaluator(policy, spec.simulate);
  d::SensitivityCursor cursor = d::make_sensitivity_cursor(spec.sensitivity);
  while (d::steepest_descent_step(evaluate, spec.sensitivity, cursor)) {
  }
  const d::SensitivityResult reference = d::sensitivity_result(cursor);

  s::SessionManager manager;
  const s::SessionId id = manager.create(spec);
  manager.wait(manager.submit(id, 2));
  manager.park(id);
  manager.wait(manager.submit(id, 1000));
  const d::SensitivityResult got = manager.sensitivity_result(id);
  EXPECT_EQ(got.decisions, reference.decisions);
  EXPECT_EQ(got.levels, reference.levels);
  EXPECT_EQ(got.final_lambda, reference.final_lambda);
  EXPECT_EQ(got.feasible, reference.feasible);
  EXPECT_THROW((void)manager.min_plus_one_result(id), std::logic_error);
}

TEST(SessionManager, TinyQueueStaysLive) {
  // queue_capacity 1 forces every submit after the first to block until
  // the service thread frees the slot — liveness, not deadlock.
  s::SessionManagerOptions options;
  options.service_threads = 2;
  options.queue_capacity = 1;
  s::SessionManager manager(options);
  const s::SessionId a = manager.create(min_plus_spec(1));
  const s::SessionId b = manager.create(min_plus_spec(2));
  for (int i = 0; i < 4; ++i) {
    (void)manager.submit(a, 1);
    (void)manager.submit(b, 1);
  }
  manager.drain();
  EXPECT_EQ(manager.stats().requests, 8u);
  EXPECT_EQ(manager.stats().steps, 8u);
}

TEST(SessionManager, ZeroStepSubmitWarmsSessionOnly) {
  s::SessionManager manager;
  const s::SessionId id = manager.create(min_plus_spec(9));
  manager.wait(manager.submit(id, 0));
  const s::SessionProgress progress = manager.progress(id);
  EXPECT_TRUE(progress.resident);
  EXPECT_EQ(progress.steps, 0u);
  EXPECT_FALSE(progress.finished);
}

}  // namespace
