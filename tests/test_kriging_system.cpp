// KrigingSystem: the shared assembly/solve layer behind all three
// estimators. The property at stake (ISSUE 5): a system grown or shrunk
// incrementally answers queries like a system built from scratch on the
// same support — weights and variance within 1e-10 — across random
// support sets, all three estimators, the ridge-fallback path, the
// Lagrange/drift border, and coincident-point dedupe.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <memory>
#include <optional>
#include <vector>

#include "kriging/ordinary_kriging.hpp"
#include "kriging/simple_kriging.hpp"
#include "kriging/system.hpp"
#include "kriging/universal_kriging.hpp"
#include "kriging/variogram_model.hpp"
#include "util/rng.hpp"

namespace {

namespace k = ace::kriging;

struct Instance {
  std::vector<std::vector<double>> points;
  std::vector<double> values;
  std::vector<double> query;
};

Instance make_instance(std::size_t dim, std::size_t n, std::uint64_t seed) {
  ace::util::Rng rng(seed);
  Instance inst;
  while (inst.points.size() < n) {
    std::vector<double> p(dim);
    for (auto& x : p) x = rng.uniform_int(0, 9);
    if (std::find(inst.points.begin(), inst.points.end(), p) ==
        inst.points.end())
      inst.points.push_back(std::move(p));
  }
  for (std::size_t i = 0; i < n; ++i)
    inst.values.push_back(rng.uniform(-10.0, 10.0));
  inst.query.resize(dim);
  for (auto& x : inst.query) x = rng.uniform(0.0, 9.0);
  return inst;
}

std::vector<k::SystemSpec> all_specs() {
  k::SystemSpec ordinary{k::SystemKind::kOrdinary, k::DriftKind::kConstant,
                         0.0, 0.0};
  k::SystemSpec simple{k::SystemKind::kSimple, k::DriftKind::kConstant, 25.0,
                       0.5};
  k::SystemSpec universal{k::SystemKind::kUniversal, k::DriftKind::kLinear,
                          0.0, 0.0};
  return {ordinary, simple, universal};
}

void expect_same_result(const std::optional<k::KrigingResult>& a,
                        const std::optional<k::KrigingResult>& b,
                        double tol) {
  ASSERT_EQ(a.has_value(), b.has_value());
  if (!a) return;
  EXPECT_NEAR(a->estimate, b->estimate, tol);
  EXPECT_NEAR(a->variance, b->variance, tol);
  EXPECT_EQ(a->regularized, b->regularized);
  ASSERT_EQ(a->weights.size(), b->weights.size());
  for (std::size_t i = 0; i < a->weights.size(); ++i)
    EXPECT_NEAR(a->weights[i], b->weights[i], tol) << "weight " << i;
}

TEST(KrigingSystem, AllInBaseMatchesLegacyEstimatorsExactly) {
  const k::SphericalVariogram model(0.1, 2.0, 8.0);
  for (std::uint64_t seed : {1u, 2u, 3u}) {
    const auto inst = make_instance(3, 6, seed);
    {
      k::KrigingSystem sys({k::SystemKind::kOrdinary}, inst.points,
                           inst.values, model);
      const auto got = sys.query(inst.query);
      const auto expect =
          k::krige(inst.points, inst.values, inst.query, model);
      ASSERT_TRUE(got && expect);
      EXPECT_EQ(got->estimate, expect->estimate);
      EXPECT_EQ(got->variance, expect->variance);
      EXPECT_EQ(got->weights, expect->weights);
    }
    {
      k::KrigingSystem sys(
          {k::SystemKind::kSimple, k::DriftKind::kConstant, 25.0, 0.5},
          inst.points, inst.values, model);
      const auto got = sys.query(inst.query);
      const auto expect = k::simple_krige(inst.points, inst.values,
                                          inst.query, model, 25.0, 0.5);
      ASSERT_TRUE(got && expect);
      EXPECT_EQ(got->estimate, expect->estimate);
      EXPECT_EQ(got->weights, expect->weights);
    }
    {
      k::KrigingSystem sys({k::SystemKind::kUniversal, k::DriftKind::kLinear},
                           inst.points, inst.values, model);
      const auto got = sys.query(inst.query);
      const auto expect =
          k::krige_with_drift(inst.points, inst.values, inst.query, model,
                              k::DriftKind::kLinear);
      ASSERT_TRUE(got && expect);
      EXPECT_EQ(got->estimate, expect->estimate);
      EXPECT_EQ(got->weights, expect->weights);
    }
  }
}

// The property test proper: grow a kIncremental system point by point and
// compare every intermediate state against a from-scratch system on the
// same prefix, for every estimator kind.
TEST(KrigingSystem, IncrementalExtendMatchesScratchAcrossEstimators) {
  const k::ExponentialVariogram model(0.05, 1.5, 6.0);
  for (const auto& spec : all_specs()) {
    for (std::uint64_t seed : {11u, 12u, 13u, 14u}) {
      const auto inst = make_instance(2, 8, seed);
      const std::size_t start = 3;
      k::KrigingSystem grown(
          spec,
          {inst.points.begin(), inst.points.begin() + start},
          {inst.values.begin(), inst.values.begin() + start}, model,
          k::l1_distance, k::KrigingSystem::Layout::kIncremental);
      for (std::size_t n = start; n <= inst.points.size(); ++n) {
        if (n > start)
          grown.append_point(inst.points[n - 1], inst.values[n - 1]);
        k::KrigingSystem scratch(
            spec, {inst.points.begin(), inst.points.begin() + n},
            {inst.values.begin(), inst.values.begin() + n}, model);
        expect_same_result(grown.query(inst.query),
                           scratch.query(inst.query), 1e-10);
      }
    }
  }
}

TEST(KrigingSystem, DowndateMatchesScratchAcrossEstimators) {
  const k::SphericalVariogram model(0.1, 2.0, 8.0);
  for (const auto& spec : all_specs()) {
    const auto inst = make_instance(2, 8, 99);
    k::KrigingSystem sys(spec, inst.points, inst.values, model,
                         k::l1_distance,
                         k::KrigingSystem::Layout::kIncremental);
    // Remove two removable slots (from the back, where appended rows live).
    std::vector<std::vector<double>> points = inst.points;
    std::vector<double> values = inst.values;
    std::size_t removed = 0;
    for (std::size_t slot = sys.support_size(); slot-- > 0 && removed < 2;) {
      if (!sys.removable(slot)) continue;
      ASSERT_TRUE(sys.remove_point(slot));
      points.erase(points.begin() + static_cast<std::ptrdiff_t>(slot));
      values.erase(values.begin() + static_cast<std::ptrdiff_t>(slot));
      ++removed;
      k::KrigingSystem scratch(spec, points, values, model);
      expect_same_result(sys.query(inst.query), scratch.query(inst.query),
                         1e-10);
    }
    EXPECT_EQ(removed, 2u);
  }
}

// The all-zero variogram makes every Γ entry 0: the plain rung is
// singular and the ladder must climb to a ridge — on the incremental
// path exactly as on the direct one.
TEST(KrigingSystem, RidgeFallbackPathMatchesScratch) {
  const k::LinearVariogram flat(0.0, 0.0);
  const auto inst = make_instance(2, 5, 7);
  k::KrigingSystem grown(
      {k::SystemKind::kOrdinary}, {inst.points.begin(), inst.points.begin() + 3},
      {inst.values.begin(), inst.values.begin() + 3}, flat, k::l1_distance,
      k::KrigingSystem::Layout::kIncremental);
  grown.append_point(inst.points[3], inst.values[3]);
  grown.append_point(inst.points[4], inst.values[4]);
  k::KrigingSystem scratch({k::SystemKind::kOrdinary}, inst.points,
                           inst.values, flat);
  const auto a = grown.query(inst.query);
  const auto b = scratch.query(inst.query);
  ASSERT_TRUE(a && b);
  EXPECT_TRUE(a->regularized);
  EXPECT_TRUE(b->regularized);
  EXPECT_EQ(a->ridge, b->ridge);  // same ladder rung, bit-equal shift
  EXPECT_NEAR(a->estimate, b->estimate, 1e-10);
  for (std::size_t i = 0; i < a->weights.size(); ++i)
    EXPECT_NEAR(a->weights[i], b->weights[i], 1e-10);
}

// Unbiasedness survives the border on both layouts: ordinary/universal
// weights sum to 1 (the Lagrange/drift border enforces it exactly).
TEST(KrigingSystem, BorderKeepsWeightsUnbiased) {
  const k::SphericalVariogram model(0.0, 1.0, 5.0);
  for (const auto layout : {k::KrigingSystem::Layout::kAllInBase,
                            k::KrigingSystem::Layout::kIncremental}) {
    for (const auto kind :
         {k::SystemKind::kOrdinary, k::SystemKind::kUniversal}) {
      const auto inst = make_instance(2, 7, 42);
      k::KrigingSystem sys({kind, k::DriftKind::kLinear}, inst.points,
                           inst.values, model, k::l1_distance, layout);
      const auto r = sys.query(inst.query);
      ASSERT_TRUE(r);
      double sum = 0.0;
      for (double w : r->weights) sum += w;
      EXPECT_NEAR(sum, 1.0, 1e-8);
    }
  }
}

TEST(KrigingSystem, CoincidentSupportIsDeduplicated) {
  const k::SphericalVariogram model(0.1, 2.0, 8.0);
  const auto inst = make_instance(2, 5, 21);
  // Duplicate two points (same value: the duplicate carries no new info).
  auto points = inst.points;
  auto values = inst.values;
  points.push_back(points[1]);
  values.push_back(values[1]);
  points.insert(points.begin() + 3, points[0]);
  values.insert(values.begin() + 3, values[0]);

  k::KrigingSystem sys({k::SystemKind::kOrdinary}, points, values, model);
  EXPECT_EQ(sys.support_size(), 7u);
  EXPECT_EQ(sys.unique_size(), 5u);

  const auto got = sys.query(inst.query);
  const auto expect = k::krige(inst.points, inst.values, inst.query, model);
  ASSERT_TRUE(got && expect);
  EXPECT_EQ(got->estimate, expect->estimate);
  ASSERT_EQ(got->weights.size(), 7u);
  EXPECT_EQ(got->weights[3], 0.0);  // duplicate of points[0]
  EXPECT_EQ(got->weights[6], 0.0);  // duplicate of points[1]

  // Appending another coincident point is a zero-weight slot, not a
  // support change.
  sys.append_point(inst.points[2], inst.values[2]);
  EXPECT_EQ(sys.unique_size(), 5u);
  const auto again = sys.query(inst.query);
  ASSERT_TRUE(again);
  EXPECT_EQ(again->estimate, expect->estimate);
  EXPECT_EQ(again->weights.back(), 0.0);
}

// Repeated queries against one support set reuse the factorization.
TEST(KrigingSystem, FactorIsReusedAcrossQueries) {
  const k::SphericalVariogram model(0.1, 2.0, 8.0);
  const auto inst = make_instance(2, 6, 33);
  k::KrigingSystem sys({k::SystemKind::kOrdinary}, inst.points, inst.values,
                       model);
  ASSERT_TRUE(sys.query(inst.query));
  const std::size_t after_first = sys.stats().full_factorizations;
  EXPECT_GE(after_first, 1u);
  std::vector<double> q2 = inst.query;
  q2[0] += 0.5;
  ASSERT_TRUE(sys.query(q2));
  EXPECT_EQ(sys.stats().full_factorizations, after_first);
  EXPECT_EQ(sys.stats().solves, 2u);
}

TEST(KrigingSystem, UniversalDriftDegradesOnTinySupport) {
  const k::SphericalVariogram model(0.1, 2.0, 8.0);
  // 3 points in 2-D: fewer than dim + 2, so the drift degrades to the
  // constant border — and must match the legacy estimator doing the same.
  const auto inst = make_instance(2, 3, 55);
  k::KrigingSystem sys({k::SystemKind::kUniversal, k::DriftKind::kLinear},
                       inst.points, inst.values, model);
  const auto got = sys.query(inst.query);
  const auto expect = k::krige_with_drift(inst.points, inst.values,
                                          inst.query, model,
                                          k::DriftKind::kLinear);
  ASSERT_EQ(got.has_value(), expect.has_value());
  ASSERT_TRUE(got);
  EXPECT_EQ(got->estimate, expect->estimate);
}

TEST(KrigingSystem, ValidatesInput) {
  const k::SphericalVariogram model(0.1, 2.0, 8.0);
  EXPECT_THROW(k::KrigingSystem({k::SystemKind::kOrdinary}, {}, {}, model),
               std::invalid_argument);
  EXPECT_THROW(k::KrigingSystem({k::SystemKind::kOrdinary}, {{1.0, 2.0}},
                                {1.0, 2.0}, model),
               std::invalid_argument);
  EXPECT_THROW(k::KrigingSystem({k::SystemKind::kOrdinary},
                                {{1.0, 2.0}, {1.0}}, {1.0, 2.0}, model),
               std::invalid_argument);
  EXPECT_THROW(
      k::KrigingSystem({k::SystemKind::kSimple, k::DriftKind::kConstant, 0.0,
                        0.0},
                       {{1.0}}, {1.0}, model),
      std::invalid_argument);
}

}  // namespace
