// Smoke test: the umbrella header compiles standalone and the major
// subsystems cooperate in one flow.
#include "ace.hpp"

#include <gtest/gtest.h>

namespace {

TEST(Umbrella, EndToEndSmoke) {
  // A toy end-to-end pass touching most subsystems through the facade.
  auto simulator = [](const ace::dse::Config& w) {
    double lambda = 0.0;
    for (int wi : w) lambda += 7.0 * wi;
    return lambda;
  };
  ace::dse::PolicyOptions policy;
  policy.distance = 3;
  ace::core::ErrorEvaluationEngine engine(simulator, policy,
                                          ace::dse::MetricKind::kAccuracyDb);
  ace::dse::MinPlusOneOptions options;
  options.nv = 3;
  options.w_min = 2;
  options.w_max = 12;
  options.lambda_min = 150.0;
  const auto result = engine.optimize_word_lengths(options);
  EXPECT_TRUE(result.constraint_met);
  EXPECT_GT(engine.stats().total, 0u);
}

}  // namespace
