// Runtime lock-order validator tests. This TU is compiled with
// ACE_LOCK_ORDER=1 (see tests/CMakeLists.txt), so the util::Mutex hooks
// are live regardless of the build type — mirroring the per-TU pinning
// the contract tests use. A recording failure handler replaces the
// default abort so a diagnosed violation becomes an assertable fact.
#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "util/lock_order.hpp"
#include "util/mutex.hpp"

namespace lock_order = ace::util::lock_order;
using ace::util::LockGuard;
using ace::util::Mutex;
using ace::util::UniqueLock;

namespace {

// The handler is a plain function pointer, so the record lives in
// globals. Tests in this binary run sequentially and each fixture resets.
std::vector<std::string> g_kinds;
std::vector<std::string> g_details;

void record_violation(const char* kind, const char* detail) {
  g_kinds.emplace_back(kind);
  g_details.emplace_back(detail);
}

class LockOrderTest : public ::testing::Test {
 protected:
  void SetUp() override {
    lock_order::reset_for_testing();
    g_kinds.clear();
    g_details.clear();
    previous_ = lock_order::set_failure_handler(&record_violation);
  }
  void TearDown() override {
    lock_order::set_failure_handler(previous_);
    lock_order::reset_for_testing();
  }

 private:
  lock_order::FailureHandler previous_ = nullptr;
};

TEST_F(LockOrderTest, CorrectHierarchyOrderIsQuiet) {
  Mutex manager{lock_order::Rank::kSessionManager, "test.manager"};
  Mutex policy{lock_order::Rank::kPolicy, "test.policy"};
  Mutex store{lock_order::Rank::kStore, "test.store"};
  for (int i = 0; i < 3; ++i) {
    const LockGuard a(manager);
    const LockGuard b(policy);
    const LockGuard c(store);
    EXPECT_EQ(lock_order::violation_count(), 0u);
  }
  EXPECT_TRUE(g_kinds.empty());
}

TEST_F(LockOrderTest, RankInversionFiresOnFirstOccurrence) {
  Mutex manager{lock_order::Rank::kSessionManager, "test.manager"};
  Mutex policy{lock_order::Rank::kPolicy, "test.policy"};
  {
    const LockGuard inner(policy);
    const LockGuard outer(manager);  // 10 under 30: inversion.
  }
  ASSERT_EQ(g_kinds.size(), 1u);
  EXPECT_EQ(g_kinds[0], "lock-rank inversion");
  EXPECT_NE(g_details[0].find("test.manager"), std::string::npos);
  EXPECT_NE(g_details[0].find("test.policy"), std::string::npos);
  EXPECT_EQ(lock_order::violation_count(), 1u);
}

TEST_F(LockOrderTest, EqualRanksMayNeverBeHeldTogether) {
  Mutex a{lock_order::Rank::kStore, "test.store_a"};
  Mutex b{lock_order::Rank::kStore, "test.store_b"};
  {
    const LockGuard first(a);
    const LockGuard second(b);
  }
  ASSERT_EQ(g_kinds.size(), 1u);
  EXPECT_EQ(g_kinds[0], "lock-rank inversion");
}

TEST_F(LockOrderTest, CycleAcrossThreadsCaughtWithoutDeadlock) {
  // Unranked mutexes: the rank check is silent, so only the acquisition
  // graph can see this. Neither thread ever blocks — the inversion is
  // diagnosed from the recorded A->B edge the moment B->A is attempted,
  // not from an actual deadlock interleaving.
  Mutex a;
  Mutex b;
  std::thread t1([&] {
    const LockGuard first(a);
    const LockGuard second(b);
  });
  t1.join();
  EXPECT_EQ(lock_order::violation_count(), 0u);
  std::thread t2([&] {
    const LockGuard first(b);
    const LockGuard second(a);
  });
  t2.join();
  ASSERT_EQ(g_kinds.size(), 1u);
  EXPECT_EQ(g_kinds[0], "lock-order cycle");
  // Both halves of the diagnosis: the current chain and the recorded
  // opposite edge.
  EXPECT_NE(g_details[0].find("this thread's chain"), std::string::npos);
  EXPECT_NE(g_details[0].find("established opposite path"),
            std::string::npos);
}

TEST_F(LockOrderTest, UniqueLockGapReleasesHeldState) {
  Mutex manager{lock_order::Rank::kSessionManager, "test.manager"};
  Mutex policy{lock_order::Rank::kPolicy, "test.policy"};
  {
    UniqueLock lock(manager);
    lock.unlock();
    // Gap: manager is NOT held, so taking policy then re-taking manager
    // is the textbook inversion the validator must still see.
    const LockGuard inner(policy);
    lock.lock();
  }
  ASSERT_EQ(g_kinds.size(), 1u);
  EXPECT_EQ(g_kinds[0], "lock-rank inversion");
}

TEST_F(LockOrderTest, DestroyedMutexLeavesNoStaleEdges) {
  {
    Mutex a;
    Mutex b;
    const LockGuard first(a);
    const LockGuard second(b);
  }  // A->B recorded, then both destroyed (and their edges dropped).
  Mutex c;
  Mutex d;
  // Even if c/d reuse the freed addresses, the opposite order is clean.
  const LockGuard first(d);
  const LockGuard second(c);
  EXPECT_EQ(lock_order::violation_count(), 0u);
}

TEST_F(LockOrderTest, TryLockRecordsTheSameHierarchyEdge) {
  Mutex policy{lock_order::Rank::kPolicy, "test.policy"};
  Mutex manager{lock_order::Rank::kSessionManager, "test.manager"};
  const LockGuard inner(policy);
  ASSERT_TRUE(manager.try_lock());  // Succeeds, but installs 10-under-30.
  manager.unlock();
  ASSERT_EQ(g_kinds.size(), 1u);
  EXPECT_EQ(g_kinds[0], "lock-rank inversion");
}

TEST_F(LockOrderTest, SetFailureHandlerReturnsThePrevious) {
  // SetUp installed record_violation; swapping again hands it back.
  lock_order::FailureHandler ours =
      lock_order::set_failure_handler(&record_violation);
  EXPECT_EQ(ours, &record_violation);
  // nullptr restores the default abort handler; reinstall ours so the
  // remaining teardown stays non-fatal.
  lock_order::FailureHandler prev = lock_order::set_failure_handler(nullptr);
  EXPECT_EQ(prev, &record_violation);
  lock_order::set_failure_handler(&record_violation);
}

}  // namespace
