#include "dse/fault_injection.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <cmath>
#include <limits>
#include <thread>
#include <vector>

#include "dse/fault.hpp"
#include "dse/kriging_policy.hpp"
#include "dse/min_plus_one.hpp"
#include "dse/scheduler.hpp"
#include "util/thread_pool.hpp"

namespace {

namespace d = ace::dse;
namespace u = ace::util;

double smooth(const d::Config& c) {
  double acc = 0.0;
  for (std::size_t i = 0; i < c.size(); ++i)
    acc += 0.5 * static_cast<double>(c[i]) +
           0.01 * static_cast<double>(c[i] * c[i]) +
           0.02 * static_cast<double>(i + 1) * static_cast<double>(c[i]);
  return acc;
}

/// Policy options that never interpolate: every healthy evaluation is a
/// simulation, so values are exact and runs are trivially comparable.
d::PolicyOptions pure_simulation() {
  d::PolicyOptions options;
  options.min_fit_points = 1000000;
  return options;
}

TEST(FaultInjection, ScheduleIsAPureFunctionOfSeedAndConfig) {
  d::FaultInjectionOptions fi;
  fi.seed = 9;
  fi.throw_probability = 0.2;
  fi.nan_probability = 0.2;
  const d::FaultInjectingSimulator a(smooth, fi);
  const d::FaultInjectingSimulator b(smooth, fi);
  fi.seed = 10;
  const d::FaultInjectingSimulator other(smooth, fi);

  std::size_t faulty = 0;
  bool schedules_differ = false;
  for (int x = 0; x < 10; ++x)
    for (int y = 0; y < 10; ++y) {
      const d::Config c{x, y};
      EXPECT_EQ(a.scheduled_fault(c), b.scheduled_fault(c));
      if (a.scheduled_fault(c) != d::FaultInjectingSimulator::Kind::kNone)
        ++faulty;
      if (a.scheduled_fault(c) != other.scheduled_fault(c))
        schedules_differ = true;
    }
  // ~40 of 100 configurations should be scheduled to fault; allow slack.
  EXPECT_GE(faulty, 15u);
  EXPECT_LE(faulty, 70u);
  EXPECT_TRUE(schedules_differ);
}

TEST(FaultInjection, TransientFaultsRecoverAfterBudget) {
  d::FaultInjectionOptions fi;
  fi.throw_probability = 1.0;  // Every configuration is faulty...
  fi.faulty_calls = 2;         // ...for its first two calls only.
  const d::FaultInjectingSimulator sim(smooth, fi);
  const d::Config c{4, 2};
  EXPECT_THROW((void)sim(c), d::SimulatorFault);
  EXPECT_THROW((void)sim(c), d::SimulatorFault);
  EXPECT_DOUBLE_EQ(sim(c), smooth(c));
  EXPECT_EQ(sim.calls(), 3u);
  EXPECT_EQ(sim.injected_throws(), 2u);
}

TEST(FaultInjection, AlwaysFaultTargetsNeverRecover) {
  d::FaultInjectionOptions fi;
  fi.always_fault = {{3, 3}};
  fi.faulty_calls = 1;
  const d::FaultInjectingSimulator sim(smooth, fi);
  for (int k = 0; k < 4; ++k) EXPECT_THROW((void)sim({3, 3}), d::SimulatorFault);
  EXPECT_DOUBLE_EQ(sim({1, 2}), smooth({1, 2}));
  EXPECT_EQ(sim.injected_throws(), 4u);
}

TEST(FaultInjection, NanAndLatencyKindsBehaveAsScheduled) {
  d::FaultInjectionOptions fi;
  fi.nan_probability = 1.0;
  fi.faulty_calls = 1;
  const d::FaultInjectingSimulator nan_sim(smooth, fi);
  EXPECT_TRUE(std::isnan(nan_sim({0, 0})));
  EXPECT_DOUBLE_EQ(nan_sim({0, 0}), smooth({0, 0}));  // Recovered.
  EXPECT_EQ(nan_sim.injected_nans(), 1u);

  d::FaultInjectionOptions lat;
  lat.latency_probability = 1.0;
  lat.latency_ms = 1;
  const d::FaultInjectingSimulator slow_sim(smooth, lat);
  EXPECT_DOUBLE_EQ(slow_sim({2, 2}), smooth({2, 2}));  // Slow but correct.
  EXPECT_EQ(slow_sim.injected_latency_spikes(), 1u);
}

TEST(PolicyFaults, ThrowingSimulatorIsQuarantinedNotFatal) {
  d::KrigingPolicy policy(pure_simulation());
  std::size_t calls = 0;
  const d::SimulatorFn sim = [&](const d::Config& c) {
    ++calls;
    if (c == d::Config{5, 5}) throw std::runtime_error("sim crashed");
    return smooth(c);
  };

  const d::EvalOutcome bad = policy.evaluate({5, 5}, sim);
  EXPECT_TRUE(bad.faulted());
  EXPECT_EQ(bad.source, d::EvalSource::kFaulted);
  EXPECT_EQ(bad.fault, d::FaultCode::kSimulatorThrow);
  EXPECT_EQ(bad.value, -std::numeric_limits<double>::infinity());
  EXPECT_EQ(bad.attempts, 1u);
  EXPECT_EQ(policy.stats().simulator_faults, 1u);
  EXPECT_EQ(policy.stats().quarantined, 1u);
  EXPECT_TRUE(policy.store().empty());
  EXPECT_EQ(calls, 1u);

  // Quarantined: the retry budget is spent, so re-evaluating must not
  // re-simulate — and the original fault code is preserved.
  const d::EvalOutcome again = policy.evaluate({5, 5}, sim);
  EXPECT_EQ(calls, 1u);
  EXPECT_EQ(again.fault, d::FaultCode::kSimulatorThrow);
  EXPECT_EQ(again.value, -std::numeric_limits<double>::infinity());
  EXPECT_EQ(policy.stats().quarantined, 1u);  // Not double-counted.

  // Healthy siblings are unaffected.
  const d::EvalOutcome good = policy.evaluate({1, 1}, sim);
  EXPECT_FALSE(good.faulted());
  EXPECT_DOUBLE_EQ(good.value, smooth({1, 1}));
}

TEST(PolicyFaults, NanResultIsANonFiniteFault) {
  d::KrigingPolicy policy(pure_simulation());
  const d::SimulatorFn sim = [](const d::Config& c) {
    return c == d::Config{2, 2} ? std::numeric_limits<double>::quiet_NaN()
                                : smooth(c);
  };
  const d::EvalOutcome out = policy.evaluate({2, 2}, sim);
  EXPECT_EQ(out.fault, d::FaultCode::kNonFinite);
  EXPECT_EQ(out.source, d::EvalSource::kFaulted);
  // The NaN never reached the store (which would reject it anyway).
  EXPECT_TRUE(policy.store().empty());
  EXPECT_EQ(*policy.store().quarantined({2, 2}), d::FaultCode::kNonFinite);
}

TEST(PolicyFaults, RetryBudgetRescuesTransientFault) {
  d::PolicyOptions options = pure_simulation();
  options.retry.max_attempts = 3;
  d::KrigingPolicy policy(options);

  d::FaultInjectionOptions fi;
  fi.throw_probability = 1.0;  // Every configuration faults once...
  fi.faulty_calls = 1;         // ...then recovers: one retry suffices.
  const d::FaultInjectingSimulator sim(smooth, fi);

  const d::EvalOutcome out = policy.evaluate({3, 4}, sim);
  EXPECT_FALSE(out.faulted());
  EXPECT_DOUBLE_EQ(out.value, smooth({3, 4}));
  EXPECT_EQ(out.source, d::EvalSource::kSimulated);
  EXPECT_EQ(out.attempts, 2u);
  EXPECT_EQ(policy.stats().retries, 1u);
  EXPECT_EQ(policy.stats().simulator_faults, 1u);
  EXPECT_EQ(policy.stats().quarantined, 0u);
  EXPECT_EQ(policy.store().size(), 1u);
}

TEST(PolicyFaults, DeadlineOverrunIsATimeoutFault) {
  d::PolicyOptions options = pure_simulation();
  options.retry.deadline_ms = 0.5;
  d::KrigingPolicy policy(options);
  const d::SimulatorFn slow = [](const d::Config& c) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    return smooth(c);
  };
  const d::EvalOutcome out = policy.evaluate({1, 2}, slow);
  EXPECT_EQ(out.fault, d::FaultCode::kTimeout);
  EXPECT_EQ(policy.stats().timeouts, 1u);
  EXPECT_EQ(*policy.store().quarantined({1, 2}), d::FaultCode::kTimeout);
}

TEST(PolicyFaults, QuarantinedConfigCanStillBeInterpolated) {
  d::PolicyOptions options;
  options.distance = 3;
  options.nn_min = 1;
  options.min_fit_points = 4;
  d::KrigingPolicy policy(options);
  const d::SimulatorFn sim = [](const d::Config& c) -> double {
    if (c == d::Config{2, 2}) throw std::runtime_error("broken point");
    return smooth(c);
  };

  // Spend {2,2}'s budget: quarantined.
  EXPECT_TRUE(policy.evaluate({2, 2}, sim).faulted());

  // Enrich the neighbourhood with healthy simulations.
  for (const d::Config& c : std::vector<d::Config>{
           {1, 1}, {3, 3}, {1, 3}, {3, 1}, {2, 1}, {1, 2}, {3, 2}, {2, 3}})
    EXPECT_FALSE(policy.evaluate(c, sim).faulted());

  // Interpolation does not need the faulty simulator, so the quarantined
  // configuration is now served by kriging instead of failing forever.
  const d::EvalOutcome out = policy.evaluate({2, 2}, sim);
  EXPECT_FALSE(out.faulted());
  EXPECT_EQ(out.source, d::EvalSource::kInterpolated);
  EXPECT_TRUE(out.interpolated);
  EXPECT_TRUE(std::isfinite(out.value));
}

TEST(PolicyFaults, BatchDegradesPerCandidateAndMatchesPooledRun) {
  const d::SimulatorFn sim = [](const d::Config& c) -> double {
    if (c == d::Config{1, 1}) throw std::runtime_error("bad candidate");
    return smooth(c);
  };
  const std::vector<d::Config> batch = {{0, 0}, {1, 1}, {1, 1}, {2, 2}};

  auto run = [&](u::ThreadPool* pool) {
    d::KrigingPolicy policy(pure_simulation());
    auto outcomes = policy.evaluate_batch(batch, sim, pool);
    return std::make_pair(outcomes, policy.stats());
  };
  const auto inline_run = run(nullptr);
  const auto& outcomes = inline_run.first;

  ASSERT_EQ(outcomes.size(), 4u);
  EXPECT_DOUBLE_EQ(outcomes[0].value, smooth({0, 0}));
  EXPECT_EQ(outcomes[1].fault, d::FaultCode::kSimulatorThrow);
  EXPECT_EQ(outcomes[1].value, -std::numeric_limits<double>::infinity());
  // The duplicate aliases the owner's fault instead of re-simulating.
  EXPECT_EQ(outcomes[2].fault, d::FaultCode::kSimulatorThrow);
  EXPECT_EQ(outcomes[2].source, d::EvalSource::kFaulted);
  EXPECT_DOUBLE_EQ(outcomes[3].value, smooth({2, 2}));

  const d::PolicyStats& stats = inline_run.second;
  EXPECT_EQ(stats.total, 4u);
  EXPECT_EQ(stats.simulated, 2u);
  EXPECT_EQ(stats.simulator_faults, 1u);
  EXPECT_EQ(stats.quarantined, 1u);

  // The deterministic-reduction contract holds under faults too: the
  // pooled run produces bit-identical outcomes and statistics.
  u::ThreadPool pool(4);
  const auto pooled = run(&pool);
  EXPECT_EQ(pooled.first, outcomes);
  EXPECT_TRUE(pooled.second == stats);
}

TEST(PolicyFaults, TransientFaultsLeaveDecisionsIdentical) {
  d::MinPlusOneOptions mpo;
  mpo.nv = 3;
  mpo.w_max = 6;
  mpo.w_min = 2;
  mpo.lambda_min = 7.0;

  // Reference: clean simulator, no retries.
  d::KrigingPolicy clean(pure_simulation());
  const d::SimulatorFn clean_sim = smooth;
  const d::MinPlusOneResult ref =
      d::min_plus_one(d::policy_batch_evaluator(clean, clean_sim), mpo);

  // Fault-injected: every configuration throws on its first call, but the
  // retry budget covers the transient depth, so every decision matches.
  d::PolicyOptions faulted_options = pure_simulation();
  faulted_options.retry.max_attempts = 2;
  d::KrigingPolicy faulted(faulted_options);
  d::FaultInjectionOptions fi;
  fi.throw_probability = 1.0;
  fi.faulty_calls = 1;
  const d::FaultInjectingSimulator fault_sim(smooth, fi);
  const d::MinPlusOneResult res =
      d::min_plus_one(d::policy_batch_evaluator(faulted, fault_sim), mpo);

  EXPECT_EQ(res.w_min, ref.w_min);
  EXPECT_EQ(res.w_res, ref.w_res);
  EXPECT_EQ(res.decisions, ref.decisions);
  EXPECT_DOUBLE_EQ(res.final_lambda, ref.final_lambda);
  EXPECT_EQ(res.constraint_met, ref.constraint_met);

  EXPECT_EQ(faulted.stats().quarantined, 0u);
  EXPECT_GT(faulted.stats().simulator_faults, 0u);
  EXPECT_EQ(faulted.stats().retries, faulted.stats().simulator_faults);
  EXPECT_EQ(faulted.stats().simulated, clean.stats().simulated);
}

TEST(FaultTaxonomy, NamesAreStable) {
  EXPECT_STREQ(d::to_string(d::EvalSource::kSimulated), "simulated");
  EXPECT_STREQ(d::to_string(d::EvalSource::kInterpolated), "interpolated");
  EXPECT_STREQ(d::to_string(d::EvalSource::kExactHit), "exact-hit");
  EXPECT_STREQ(d::to_string(d::EvalSource::kFaulted), "faulted");
  EXPECT_STREQ(d::to_string(d::FaultCode::kNone), "none");
  EXPECT_STREQ(d::to_string(d::FaultCode::kNonFinite), "non-finite");
  EXPECT_STREQ(d::to_string(d::FaultCode::kSimulatorThrow), "simulator-throw");
  EXPECT_STREQ(d::to_string(d::FaultCode::kTimeout), "timeout");
  EXPECT_STREQ(d::to_string(d::FaultCode::kKrigingUnsolvable),
               "kriging-unsolvable");
}

}  // namespace
