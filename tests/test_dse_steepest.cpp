#include "dse/steepest_descent.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

namespace {

namespace d = ace::dse;

/// Analytic quality: each source at level e contributes damage 2^-e·k_i;
/// quality = 1 − total damage. Monotone: lower levels hurt more.
struct QualitySurface {
  std::vector<double> sensitivity;
  double operator()(const d::Config& levels) const {
    double damage = 0.0;
    for (std::size_t i = 0; i < levels.size(); ++i)
      damage += sensitivity[i] * std::ldexp(1.0, -levels[i]);
    return 1.0 - damage;
  }
};

TEST(SteepestDescent, OptionValidation) {
  QualitySurface q{{1.0}};
  d::SensitivityOptions o;
  o.nv = 0;
  EXPECT_THROW((void)d::steepest_descent_budgeting(q, o),
               std::invalid_argument);
  o.nv = 1;
  o.level_min = 5;
  o.level_max = 3;
  EXPECT_THROW((void)d::steepest_descent_budgeting(q, o),
               std::invalid_argument);
}

TEST(SteepestDescent, InfeasibleStartReturnsImmediately) {
  QualitySurface q{{10.0, 10.0}};  // Huge damage even at max level.
  d::SensitivityOptions o;
  o.nv = 2;
  o.level_max = 2;
  o.level_min = 0;
  o.lambda_min = 0.99;
  const auto r = d::steepest_descent_budgeting(q, o);
  EXPECT_FALSE(r.feasible);
  EXPECT_TRUE(r.decisions.empty());
  EXPECT_EQ(r.levels, (d::Config{2, 2}));
}

TEST(SteepestDescent, RelaxesUntilQualityBoundary) {
  // One source, quality 1 − 2^-e. Constraint 0.9 → needs 2^-e <= 0.1 →
  // e >= 4 (2^-4 = 0.0625; 2^-3 = 0.125 breaks).
  QualitySurface q{{1.0}};
  d::SensitivityOptions o;
  o.nv = 1;
  o.level_max = 10;
  o.level_min = 0;
  o.lambda_min = 0.9;
  const auto r = d::steepest_descent_budgeting(q, o);
  EXPECT_TRUE(r.feasible);
  EXPECT_EQ(r.levels, (d::Config{4}));
  EXPECT_EQ(r.decisions.size(), 6u);  // 10 -> 4.
  EXPECT_GE(r.final_lambda, 0.9);
}

TEST(SteepestDescent, RelaxesLeastSensitiveSourceFirst) {
  // Source 1 hurts 8× less per level: it should be relaxed before source 0.
  QualitySurface q{{0.8, 0.1}};
  d::SensitivityOptions o;
  o.nv = 2;
  o.level_max = 8;
  o.level_min = 0;
  o.lambda_min = 0.97;
  const auto r = d::steepest_descent_budgeting(q, o);
  EXPECT_TRUE(r.feasible);
  ASSERT_FALSE(r.decisions.empty());
  EXPECT_EQ(r.decisions.front(), 1u);
  // The cheap source should end at a lower (more relaxed) level.
  EXPECT_LT(r.levels[1], r.levels[0]);
}

TEST(SteepestDescent, FullyRelaxedStopsAtLevelMin) {
  QualitySurface q{{1e-9, 1e-9}};  // Damage never matters.
  d::SensitivityOptions o;
  o.nv = 2;
  o.level_max = 3;
  o.level_min = 0;
  o.lambda_min = 0.5;
  const auto r = d::steepest_descent_budgeting(q, o);
  EXPECT_TRUE(r.feasible);
  EXPECT_EQ(r.levels, (d::Config{0, 0}));
  EXPECT_EQ(r.decisions.size(), 6u);
}

TEST(SteepestDescent, MaxStepsCap) {
  QualitySurface q{{1e-9}};
  d::SensitivityOptions o;
  o.nv = 1;
  o.level_max = 100;  // Would take 100 steps.
  o.lambda_min = 0.5;
  o.max_steps = 7;
  const auto r = d::steepest_descent_budgeting(q, o);
  EXPECT_EQ(r.decisions.size(), 7u);
  EXPECT_EQ(r.levels[0], 93);
}

TEST(SteepestDescent, BatchOverloadMatchesScalar) {
  QualitySurface q{{0.8, 0.1, 0.3}};
  d::SensitivityOptions o;
  o.nv = 3;
  o.level_max = 9;
  o.level_min = 0;
  o.lambda_min = 0.95;

  const auto scalar = d::steepest_descent_budgeting(q, o);
  const d::BatchEvaluateFn batched = [&](const std::vector<d::Config>& b) {
    std::vector<double> values;
    for (const auto& levels : b) values.push_back(q(levels));
    return values;
  };
  const auto batch = d::steepest_descent_budgeting(batched, o);

  EXPECT_EQ(batch.levels, scalar.levels);
  EXPECT_EQ(batch.decisions, scalar.decisions);
  EXPECT_DOUBLE_EQ(batch.final_lambda, scalar.final_lambda);
  EXPECT_EQ(batch.feasible, scalar.feasible);
}

TEST(SteepestDescent, NeverCommitsAnInfeasibleMove) {
  QualitySurface q{{0.5, 0.5}};
  d::SensitivityOptions o;
  o.nv = 2;
  o.level_max = 6;
  o.level_min = 0;
  o.lambda_min = 0.8;
  const auto r = d::steepest_descent_budgeting(q, o);
  EXPECT_TRUE(r.feasible);
  EXPECT_GE(r.final_lambda, 0.8);
  EXPECT_GE(q(r.levels), 0.8);
}

}  // namespace
