#include "util/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

namespace {

namespace u = ace::util;

TEST(ThreadPool, RunsEveryIndexExactlyOnce) {
  u::ThreadPool pool(4);
  constexpr std::size_t kCount = 1000;
  std::vector<std::atomic<int>> hits(kCount);
  pool.run_indexed(kCount, [&](std::size_t i) { ++hits[i]; });
  for (std::size_t i = 0; i < kCount; ++i) EXPECT_EQ(hits[i].load(), 1);
}

TEST(ThreadPool, ReusableAcrossBatches) {
  u::ThreadPool pool(3);
  std::vector<double> out(64, 0.0);
  for (int round = 1; round <= 5; ++round) {
    pool.run_indexed(out.size(), [&](std::size_t i) {
      out[i] = static_cast<double>(round) * static_cast<double>(i);
    });
    for (std::size_t i = 0; i < out.size(); ++i)
      EXPECT_DOUBLE_EQ(out[i],
                       static_cast<double>(round) * static_cast<double>(i));
  }
}

TEST(ThreadPool, ZeroCountIsANoop) {
  u::ThreadPool pool(2);
  bool touched = false;
  pool.run_indexed(0, [&](std::size_t) { touched = true; });
  EXPECT_FALSE(touched);
}

TEST(ThreadPool, WorkerCountClampsToAtLeastOne) {
  u::ThreadPool pool(0);
  EXPECT_EQ(pool.worker_count(), 1u);
  std::atomic<int> ran{0};
  pool.run_indexed(8, [&](std::size_t) { ++ran; });
  EXPECT_EQ(ran.load(), 8);
}

TEST(ThreadPool, PropagatesFirstExceptionAndStaysUsable) {
  u::ThreadPool pool(4);
  EXPECT_THROW(pool.run_indexed(100,
                                [&](std::size_t i) {
                                  if (i == 37)
                                    throw std::runtime_error("boom");
                                }),
               std::runtime_error);
  // The failed batch drained fully; the pool accepts new work.
  std::atomic<int> ran{0};
  pool.run_indexed(16, [&](std::size_t) { ++ran; });
  EXPECT_EQ(ran.load(), 16);
}

TEST(ThreadPool, ResultsIdenticalAcrossPoolSizes) {
  // Index-addressed slots make the result independent of scheduling.
  auto fill = [](u::ThreadPool* pool) {
    std::vector<double> out(257, 0.0);
    u::parallel_for_indexed(pool, out.size(), [&](std::size_t i) {
      out[i] = static_cast<double>(i * i) + 0.5;
    });
    return out;
  };
  const std::vector<double> serial = fill(nullptr);
  for (const std::size_t workers : {1u, 2u, 4u, 8u}) {
    u::ThreadPool pool(workers);
    EXPECT_EQ(fill(&pool), serial);
  }
}

TEST(ParallelForIndexed, NullPoolRunsInlineInIndexOrder) {
  std::vector<std::size_t> order;
  u::parallel_for_indexed(nullptr, 6,
                          [&](std::size_t i) { order.push_back(i); });
  std::vector<std::size_t> expected(6);
  std::iota(expected.begin(), expected.end(), 0u);
  EXPECT_EQ(order, expected);
}

TEST(ParallelForIndexed, SingleElementRunsInlineEvenWithPool) {
  // n <= 1 short-circuits: no pool dispatch overhead for singletons.
  u::ThreadPool pool(2);
  std::size_t seen = 99;
  u::parallel_for_indexed(&pool, 1, [&](std::size_t i) { seen = i; });
  EXPECT_EQ(seen, 0u);
}

TEST(ThreadPoolCollect, CapturesAllErrorsSortedByIndex) {
  u::ThreadPool pool(4);
  constexpr std::size_t kCount = 200;
  std::vector<std::atomic<int>> hits(kCount);
  const std::vector<u::TaskError> errors =
      pool.run_indexed_collect(kCount, [&](std::size_t i) {
        ++hits[i];
        if (i % 17 == 3) throw std::runtime_error("task " + std::to_string(i));
      });
  // Every failure is reported (none aborts the batch), sorted by index.
  std::vector<std::size_t> expected;
  for (std::size_t i = 0; i < kCount; ++i)
    if (i % 17 == 3) expected.push_back(i);
  ASSERT_EQ(errors.size(), expected.size());
  for (std::size_t e = 0; e < errors.size(); ++e) {
    EXPECT_EQ(errors[e].index, expected[e]);
    try {
      std::rethrow_exception(errors[e].error);
      FAIL() << "error slot held no exception";
    } catch (const std::runtime_error& ex) {
      EXPECT_EQ(ex.what(), "task " + std::to_string(expected[e]));
    }
  }
  // Surviving tasks' side effects are retained: every index ran once.
  for (std::size_t i = 0; i < kCount; ++i) EXPECT_EQ(hits[i].load(), 1);
}

TEST(ThreadPoolCollect, NoErrorsYieldsEmptyListAndPoolStaysUsable) {
  u::ThreadPool pool(3);
  EXPECT_TRUE(pool.run_indexed_collect(50, [](std::size_t) {}).empty());
  const auto errors = pool.run_indexed_collect(
      8, [](std::size_t i) { if (i == 2) throw std::logic_error("x"); });
  EXPECT_EQ(errors.size(), 1u);
  std::atomic<int> ran{0};
  pool.run_indexed_collect(16, [&](std::size_t) { ++ran; });
  EXPECT_EQ(ran.load(), 16);
}

TEST(ThreadPoolCollect, RethrowWrapperThrowsLowestIndexedError) {
  // run_indexed is now a wrapper over the collecting primitive: it drains
  // the whole batch, then rethrows the lowest-indexed error — a
  // deterministic choice, unlike first-to-occur.
  u::ThreadPool pool(4);
  try {
    pool.run_indexed(64, [&](std::size_t i) {
      if (i == 50 || i == 9) throw std::runtime_error(std::to_string(i));
    });
    FAIL() << "run_indexed did not throw";
  } catch (const std::runtime_error& ex) {
    EXPECT_STREQ(ex.what(), "9");
  }
}

TEST(ParallelForIndexedCollect, SerialPathMirrorsPoolPath) {
  // The inline path must also keep going past a throwing index, so the
  // pooled and serial runs leave identical side effects and error lists.
  auto run = [](u::ThreadPool* pool) {
    std::vector<int> hits(10, 0);
    const auto errors =
        u::parallel_for_indexed_collect(pool, hits.size(), [&](std::size_t i) {
          hits[i] = 1;
          if (i % 4 == 1) throw std::runtime_error("boom");
        });
    std::vector<std::size_t> indices;
    for (const auto& e : errors) indices.push_back(e.index);
    return std::make_pair(hits, indices);
  };
  const auto serial = run(nullptr);
  EXPECT_EQ(serial.first, std::vector<int>(10, 1));
  EXPECT_EQ(serial.second, (std::vector<std::size_t>{1, 5, 9}));
  u::ThreadPool pool(4);
  EXPECT_EQ(run(&pool), serial);
}

}  // namespace
