#include "util/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

namespace {

namespace u = ace::util;

TEST(ThreadPool, RunsEveryIndexExactlyOnce) {
  u::ThreadPool pool(4);
  constexpr std::size_t kCount = 1000;
  std::vector<std::atomic<int>> hits(kCount);
  pool.run_indexed(kCount, [&](std::size_t i) { ++hits[i]; });
  for (std::size_t i = 0; i < kCount; ++i) EXPECT_EQ(hits[i].load(), 1);
}

TEST(ThreadPool, ReusableAcrossBatches) {
  u::ThreadPool pool(3);
  std::vector<double> out(64, 0.0);
  for (int round = 1; round <= 5; ++round) {
    pool.run_indexed(out.size(), [&](std::size_t i) {
      out[i] = static_cast<double>(round) * static_cast<double>(i);
    });
    for (std::size_t i = 0; i < out.size(); ++i)
      EXPECT_DOUBLE_EQ(out[i],
                       static_cast<double>(round) * static_cast<double>(i));
  }
}

TEST(ThreadPool, ZeroCountIsANoop) {
  u::ThreadPool pool(2);
  bool touched = false;
  pool.run_indexed(0, [&](std::size_t) { touched = true; });
  EXPECT_FALSE(touched);
}

TEST(ThreadPool, WorkerCountClampsToAtLeastOne) {
  u::ThreadPool pool(0);
  EXPECT_EQ(pool.worker_count(), 1u);
  std::atomic<int> ran{0};
  pool.run_indexed(8, [&](std::size_t) { ++ran; });
  EXPECT_EQ(ran.load(), 8);
}

TEST(ThreadPool, PropagatesFirstExceptionAndStaysUsable) {
  u::ThreadPool pool(4);
  EXPECT_THROW(pool.run_indexed(100,
                                [&](std::size_t i) {
                                  if (i == 37)
                                    throw std::runtime_error("boom");
                                }),
               std::runtime_error);
  // The failed batch drained fully; the pool accepts new work.
  std::atomic<int> ran{0};
  pool.run_indexed(16, [&](std::size_t) { ++ran; });
  EXPECT_EQ(ran.load(), 16);
}

TEST(ThreadPool, ResultsIdenticalAcrossPoolSizes) {
  // Index-addressed slots make the result independent of scheduling.
  auto fill = [](u::ThreadPool* pool) {
    std::vector<double> out(257, 0.0);
    u::parallel_for_indexed(pool, out.size(), [&](std::size_t i) {
      out[i] = static_cast<double>(i * i) + 0.5;
    });
    return out;
  };
  const std::vector<double> serial = fill(nullptr);
  for (const std::size_t workers : {1u, 2u, 4u, 8u}) {
    u::ThreadPool pool(workers);
    EXPECT_EQ(fill(&pool), serial);
  }
}

TEST(ParallelForIndexed, NullPoolRunsInlineInIndexOrder) {
  std::vector<std::size_t> order;
  u::parallel_for_indexed(nullptr, 6,
                          [&](std::size_t i) { order.push_back(i); });
  std::vector<std::size_t> expected(6);
  std::iota(expected.begin(), expected.end(), 0u);
  EXPECT_EQ(order, expected);
}

TEST(ParallelForIndexed, SingleElementRunsInlineEvenWithPool) {
  // n <= 1 short-circuits: no pool dispatch overhead for singletons.
  u::ThreadPool pool(2);
  std::size_t seen = 99;
  u::parallel_for_indexed(&pool, 1, [&](std::size_t i) { seen = i; });
  EXPECT_EQ(seen, 0u);
}

}  // namespace
