#include "signal/dct.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

#include "util/rng.hpp"

namespace {

namespace s = ace::signal;

std::array<double, s::kDctBlock> random_block(ace::util::Rng& rng) {
  std::array<double, s::kDctBlock> block{};
  for (auto& v : block) v = rng.uniform(-0.5, 0.5);
  return block;
}

TEST(Dct2d, ConstantBlockConcentratesInDc) {
  std::array<double, s::kDctBlock> block{};
  block.fill(0.25);
  const auto coeffs = s::dct2d_reference(block);
  // Orthonormal 2-D DCT: DC = 8 · mean = 2.0 for a constant 0.25 block.
  EXPECT_NEAR(coeffs[0], 0.25 * 8.0, 1e-12);
  for (std::size_t i = 1; i < s::kDctBlock; ++i)
    EXPECT_NEAR(coeffs[i], 0.0, 1e-12) << "coefficient " << i;
}

TEST(Dct2d, RoundTripThroughInverse) {
  ace::util::Rng rng(41);
  for (int trial = 0; trial < 5; ++trial) {
    const auto block = random_block(rng);
    const auto back = s::idct2d_reference(s::dct2d_reference(block));
    for (std::size_t i = 0; i < s::kDctBlock; ++i)
      EXPECT_NEAR(back[i], block[i], 1e-10);
  }
}

TEST(Dct2d, ParsevalEnergyPreserved) {
  ace::util::Rng rng(42);
  const auto block = random_block(rng);
  const auto coeffs = s::dct2d_reference(block);
  double in_energy = 0.0, out_energy = 0.0;
  for (double v : block) in_energy += v * v;
  for (double v : coeffs) out_energy += v * v;
  EXPECT_NEAR(out_energy, in_energy, 1e-10);
}

TEST(Dct2d, Linearity) {
  ace::util::Rng rng(43);
  const auto a = random_block(rng);
  const auto b = random_block(rng);
  std::array<double, s::kDctBlock> sum{};
  for (std::size_t i = 0; i < s::kDctBlock; ++i) sum[i] = 2.0 * a[i] - b[i];
  const auto ca = s::dct2d_reference(a);
  const auto cb = s::dct2d_reference(b);
  const auto cs = s::dct2d_reference(sum);
  for (std::size_t i = 0; i < s::kDctBlock; ++i)
    EXPECT_NEAR(cs[i], 2.0 * ca[i] - cb[i], 1e-10);
}

TEST(QuantizedDct, Validation) {
  ace::util::Rng rng(44);
  EXPECT_THROW(s::QuantizedDct2d({}), std::invalid_argument);
  const s::QuantizedDct2d q({random_block(rng)});
  EXPECT_EQ(q.site_integer_bits().size(), s::kDctVariables);
  EXPECT_THROW((void)q.transform(random_block(rng), {8, 8}),
               std::invalid_argument);
  EXPECT_THROW((void)q.transform(random_block(rng),
                                 std::vector<int>(6, 1)),
               std::invalid_argument);
}

TEST(QuantizedDct, WideWordsConvergeToReference) {
  ace::util::Rng rng(45);
  const auto block = random_block(rng);
  const s::QuantizedDct2d q({block});
  const auto ref = s::dct2d_reference(block);
  const auto approx = q.transform(block, std::vector<int>(6, 40));
  for (std::size_t i = 0; i < s::kDctBlock; ++i)
    EXPECT_NEAR(approx[i], ref[i], 1e-9);
}

class DctMonotoneTest : public ::testing::TestWithParam<int> {};

TEST_P(DctMonotoneTest, NoiseShrinksWithWiderWords) {
  const int w = GetParam();
  ace::util::Rng rng(46);
  const auto block = random_block(rng);
  const s::QuantizedDct2d q({block});
  const auto ref = s::dct2d_reference(block);
  auto mse_at = [&](int width) {
    const auto out = q.transform(block, std::vector<int>(6, width));
    double acc = 0.0;
    for (std::size_t i = 0; i < s::kDctBlock; ++i) {
      const double e = out[i] - ref[i];
      acc += e * e;
    }
    return acc;
  };
  EXPECT_LT(mse_at(w + 4), mse_at(w));
}

INSTANTIATE_TEST_SUITE_P(Widths, DctMonotoneTest,
                         ::testing::Values(6, 8, 10, 12));

TEST(QuantizedDct, Deterministic) {
  ace::util::Rng rng(47);
  const auto block = random_block(rng);
  const s::QuantizedDct2d q({block});
  const std::vector<int> w = {10, 11, 12, 10, 11, 12};
  EXPECT_EQ(q.transform(block, w), q.transform(block, w));
}

}  // namespace
