#include "dse/sim_store.hpp"

#include <gtest/gtest.h>

#include <limits>
#include <stdexcept>

#include "kriging/ordinary_kriging.hpp"
#include "kriging/variogram_model.hpp"
#include "util/contract.hpp"
#include "util/errors.hpp"
#include "util/rng.hpp"

namespace {

namespace d = ace::dse;

TEST(SimulationStore, AddAndAccess) {
  d::SimulationStore store;
  EXPECT_TRUE(store.empty());
  store.add({8, 8}, -40.0);
  store.add({8, 9}, -45.0);
  EXPECT_EQ(store.size(), 2u);
  EXPECT_EQ(store.config(1), (d::Config{8, 9}));
  EXPECT_DOUBLE_EQ(store.value(0), -40.0);
  EXPECT_THROW((void)store.config(2), std::out_of_range);
  EXPECT_THROW((void)store.value(5), std::out_of_range);
}

TEST(SimulationStore, RejectsDimensionMismatch) {
  d::SimulationStore store;
  store.add({1, 2, 3}, 0.0);
  EXPECT_THROW(store.add({1, 2}, 0.0), std::invalid_argument);
}

TEST(SimulationStore, NeighborsWithinRadiusIsInclusive) {
  d::SimulationStore store;
  store.add({0, 0}, 1.0);   // d = 0 from query {0,0}.
  store.add({1, 0}, 2.0);   // d = 1.
  store.add({1, 1}, 3.0);   // d = 2.
  store.add({3, 3}, 4.0);   // d = 6.
  const auto n0 = store.neighbors_within({0, 0}, 0);
  EXPECT_EQ(n0.count(), 1u);
  const auto n1 = store.neighbors_within({0, 0}, 1);
  EXPECT_EQ(n1.count(), 2u);
  const auto n2 = store.neighbors_within({0, 0}, 2);
  EXPECT_EQ(n2.count(), 3u);
  const auto n6 = store.neighbors_within({0, 0}, 6);
  EXPECT_EQ(n6.count(), 4u);
}

TEST(SimulationStore, GatherProducesAlignedPointsAndValues) {
  d::SimulationStore store;
  store.add({0, 0}, 1.0);
  store.add({2, 0}, 2.0);
  store.add({5, 5}, 9.0);
  const auto n = store.neighbors_within({1, 0}, 2);
  ASSERT_EQ(n.count(), 2u);
  std::vector<std::vector<double>> points;
  std::vector<double> values;
  store.gather(n, points, values);
  ASSERT_EQ(points.size(), 2u);
  EXPECT_DOUBLE_EQ(points[0][0], 0.0);
  EXPECT_DOUBLE_EQ(points[1][0], 2.0);
  EXPECT_DOUBLE_EQ(values[0], 1.0);
  EXPECT_DOUBLE_EQ(values[1], 2.0);
}

TEST(SimulationStore, EmptyStoreHasNoNeighbors) {
  d::SimulationStore store;
  EXPECT_EQ(store.neighbors_within({0, 0}, 100).count(), 0u);
}

TEST(SimulationStore, ExactDuplicateUpdatesInPlace) {
  d::SimulationStore store;
  EXPECT_EQ(store.add({4, 4}, -10.0), 0u);
  EXPECT_EQ(store.add({4, 5}, -20.0), 1u);
  // Re-adding an existing configuration must not create a second support
  // point; it returns the original index and refreshes the value.
  EXPECT_EQ(store.add({4, 4}, -11.0), 0u);
  EXPECT_EQ(store.size(), 2u);
  EXPECT_DOUBLE_EQ(store.value(0), -11.0);
  ASSERT_TRUE(store.find({4, 4}).has_value());
  EXPECT_EQ(*store.find({4, 4}), 0u);
  EXPECT_FALSE(store.find({9, 9}).has_value());
  // The radius index holds it once.
  EXPECT_EQ(store.neighbors_within({4, 4}, 0).count(), 1u);
}

TEST(SimulationStore, IndexedRadiusQueriesMatchBruteForce) {
  ace::util::Rng rng(77);
  d::SimulationStore store;
  std::vector<d::Config> configs;
  for (int k = 0; k < 200; ++k) {
    d::Config c(5);
    for (auto& v : c) v = rng.uniform_int(0, 8);
    if (store.find(c).has_value()) continue;
    configs.push_back(c);
    store.add(std::move(c), static_cast<double>(k));
  }
  for (int q = 0; q < 30; ++q) {
    d::Config query(5);
    for (auto& v : query) v = rng.uniform_int(0, 8);
    for (const int radius : {0, 1, 2, 3, 6}) {
      std::vector<std::size_t> expected;
      for (std::size_t i = 0; i < configs.size(); ++i)
        if (d::l1_distance(configs[i], query) <= radius)
          expected.push_back(i);
      EXPECT_EQ(store.neighbors_within(query, radius).indices, expected);
    }
    for (const double radius : {0.5, 1.5, 2.5, 4.0}) {
      std::vector<std::size_t> expected;
      for (std::size_t i = 0; i < configs.size(); ++i)
        if (d::l2_distance(configs[i], query) <= radius)
          expected.push_back(i);
      EXPECT_EQ(store.neighbors_within_l2(query, radius).indices, expected);
    }
  }
}

TEST(SimulationStore, NeighborQueryRejectsDimensionMismatch) {
  d::SimulationStore store;
  store.add({1, 2, 3}, 0.0);
  EXPECT_THROW((void)store.neighbors_within({1, 2}, 3), std::invalid_argument);
  EXPECT_THROW((void)store.neighbors_within_l2({1, 2}, 3.0),
               std::invalid_argument);
}

TEST(SimulationStore, DeduplicationKeepsKrigingWellPosed) {
  // A duplicated support point makes two rows of the kriging Γ identical,
  // forcing the ridge fallback. With update-in-place deduplication the
  // gathered support stays distinct and the system solves cleanly.
  d::SimulationStore store;
  store.add({0, 0}, 0.0);
  store.add({1, 0}, 1.0);
  store.add({0, 1}, 2.0);
  store.add({1, 0}, 1.0);  // Duplicate: must not enter twice.
  ASSERT_EQ(store.size(), 3u);

  const auto n = store.neighbors_within({1, 1}, 2);
  ASSERT_EQ(n.count(), 3u);
  std::vector<std::vector<double>> points;
  std::vector<double> values;
  store.gather(n, points, values);

  const ace::kriging::LinearVariogram model(0.0, 1.0);
  const auto result =
      ace::kriging::krige(points, values, {1.0, 1.0}, model);
  ASSERT_TRUE(result.has_value());
  EXPECT_FALSE(result->regularized);
}

TEST(SimulationStore, AddRejectsNonFiniteValues) {
  // Regression guard: a NaN slipping into the store used to poison every
  // variogram bin it touched and every kriging system that gathered it.
  // Now the store is the hard boundary: non-finite λ never enters.
  d::SimulationStore store;
  store.add({1, 1}, 0.5);
  EXPECT_THROW(store.add({2, 1}, std::numeric_limits<double>::quiet_NaN()),
               ace::util::NonFiniteError);
  EXPECT_THROW(store.add({2, 2}, std::numeric_limits<double>::infinity()),
               ace::util::NonFiniteError);
  EXPECT_THROW(store.add({2, 3}, -std::numeric_limits<double>::infinity()),
               ace::util::NonFiniteError);
  // NonFiniteError is an invalid_argument, so legacy catch sites still work.
  EXPECT_THROW(store.add({2, 1}, std::numeric_limits<double>::quiet_NaN()),
               std::invalid_argument);
  EXPECT_EQ(store.size(), 1u);
  EXPECT_FALSE(store.find({2, 1}).has_value());
}

TEST(SimulationStore, QuarantineTracksFirstFaultCode) {
  d::SimulationStore store;
  EXPECT_EQ(store.quarantine_count(), 0u);
  EXPECT_FALSE(store.quarantined({3, 3}).has_value());

  EXPECT_TRUE(store.quarantine({3, 3}, d::FaultCode::kSimulatorThrow));
  // Re-quarantining is not a new quarantine and keeps the original code.
  EXPECT_FALSE(store.quarantine({3, 3}, d::FaultCode::kTimeout));
  EXPECT_TRUE(store.quarantine({4, 4}, d::FaultCode::kNonFinite));

  ASSERT_TRUE(store.quarantined({3, 3}).has_value());
  EXPECT_EQ(*store.quarantined({3, 3}), d::FaultCode::kSimulatorThrow);
  ASSERT_TRUE(store.quarantined({4, 4}).has_value());
  EXPECT_EQ(*store.quarantined({4, 4}), d::FaultCode::kNonFinite);
  EXPECT_EQ(store.quarantine_count(), 2u);

  // The log is insertion-ordered (what checkpoints serialize).
  ASSERT_EQ(store.quarantine_log().size(), 2u);
  EXPECT_EQ(store.quarantine_log()[0].first, (d::Config{3, 3}));
  EXPECT_EQ(store.quarantine_log()[0].second, d::FaultCode::kSimulatorThrow);
  EXPECT_EQ(store.quarantine_log()[1].first, (d::Config{4, 4}));

  // Quarantine is bookkeeping, not storage: the store itself is untouched.
  EXPECT_TRUE(store.empty());
}

TEST(SimulationStore, QuarantineLiftedBySuccessfulAdd) {
  // Regression: a transiently faulting configuration (flaky simulator run,
  // timeout under load) used to stay a permanent outcast even after a later
  // clean simulation. A successful add must lift the active quarantine while
  // the log keeps the event for audit.
  d::SimulationStore store;
  EXPECT_TRUE(store.quarantine({3, 3}, d::FaultCode::kTimeout));
  ASSERT_TRUE(store.quarantined({3, 3}).has_value());

  store.add({3, 3}, -42.0);
  EXPECT_FALSE(store.quarantined({3, 3}).has_value());
  ASSERT_TRUE(store.find({3, 3}).has_value());
  EXPECT_DOUBLE_EQ(store.value(*store.find({3, 3})), -42.0);

  // The audit log keeps the lifted event; only the active map forgets it.
  EXPECT_EQ(store.quarantine_count(), 1u);
  ASSERT_EQ(store.quarantine_log().size(), 1u);
  EXPECT_EQ(store.quarantine_log()[0].first, (d::Config{3, 3}));
  EXPECT_EQ(store.quarantine_log()[0].second, d::FaultCode::kTimeout);

  // After the lift the configuration can fault (and quarantine) anew, and
  // that is a *new* quarantine event appended to the log.
  EXPECT_TRUE(store.quarantine({3, 3}, d::FaultCode::kNonFinite));
  ASSERT_TRUE(store.quarantined({3, 3}).has_value());
  EXPECT_EQ(*store.quarantined({3, 3}), d::FaultCode::kNonFinite);
  ASSERT_EQ(store.quarantine_log().size(), 2u);
  EXPECT_EQ(store.quarantine_log()[1].second, d::FaultCode::kNonFinite);
}

TEST(SimulationStore, UpdateInPlaceAlsoLiftsQuarantine) {
  // The lift applies on the duplicate-update path too: the config is
  // already stored, a re-simulation succeeded, so it is healthy again.
  d::SimulationStore store;
  store.add({5, 5}, 1.0);
  EXPECT_TRUE(store.quarantine({5, 5}, d::FaultCode::kSimulatorThrow));
  EXPECT_EQ(store.add({5, 5}, 2.0), 0u);
  EXPECT_FALSE(store.quarantined({5, 5}).has_value());
  EXPECT_DOUBLE_EQ(store.value(0), 2.0);
}

TEST(SimulationStore, NegativeRadiusIsAContractViolation) {
  // A negative radius is always a caller sign bug, never an empty query.
  // With contracts compiled in (Debug) it throws; in Release the contracts
  // are compiled out and the scans degenerate to empty results.
  d::SimulationStore store;
  store.add({1, 1}, 0.0);
  store.add({2, 2}, 1.0);
#if ACE_CONTRACTS_ENABLED
  EXPECT_THROW((void)store.neighbors_within({1, 1}, -1),
               ace::util::ContractViolation);
  EXPECT_THROW((void)store.neighbors_within_l2({1, 1}, -0.5),
               ace::util::ContractViolation);
  EXPECT_THROW((void)store.neighbors_within_linear({1, 1}, -1),
               ace::util::ContractViolation);
  EXPECT_THROW((void)store.neighbors_within_l2_linear({1, 1}, -0.5),
               ace::util::ContractViolation);
#else
  EXPECT_EQ(store.neighbors_within({1, 1}, -1).count(), 0u);
  EXPECT_EQ(store.neighbors_within_l2({1, 1}, -0.5).count(), 0u);
  EXPECT_EQ(store.neighbors_within_linear({1, 1}, -1).count(), 0u);
  EXPECT_EQ(store.neighbors_within_l2_linear({1, 1}, -0.5).count(), 0u);
#endif
}

}  // namespace
