#include "dse/sim_store.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace {

namespace d = ace::dse;

TEST(SimulationStore, AddAndAccess) {
  d::SimulationStore store;
  EXPECT_TRUE(store.empty());
  store.add({8, 8}, -40.0);
  store.add({8, 9}, -45.0);
  EXPECT_EQ(store.size(), 2u);
  EXPECT_EQ(store.config(1), (d::Config{8, 9}));
  EXPECT_DOUBLE_EQ(store.value(0), -40.0);
  EXPECT_THROW((void)store.config(2), std::out_of_range);
  EXPECT_THROW((void)store.value(5), std::out_of_range);
}

TEST(SimulationStore, RejectsDimensionMismatch) {
  d::SimulationStore store;
  store.add({1, 2, 3}, 0.0);
  EXPECT_THROW(store.add({1, 2}, 0.0), std::invalid_argument);
}

TEST(SimulationStore, NeighborsWithinRadiusIsInclusive) {
  d::SimulationStore store;
  store.add({0, 0}, 1.0);   // d = 0 from query {0,0}.
  store.add({1, 0}, 2.0);   // d = 1.
  store.add({1, 1}, 3.0);   // d = 2.
  store.add({3, 3}, 4.0);   // d = 6.
  const auto n0 = store.neighbors_within({0, 0}, 0);
  EXPECT_EQ(n0.count(), 1u);
  const auto n1 = store.neighbors_within({0, 0}, 1);
  EXPECT_EQ(n1.count(), 2u);
  const auto n2 = store.neighbors_within({0, 0}, 2);
  EXPECT_EQ(n2.count(), 3u);
  const auto n6 = store.neighbors_within({0, 0}, 6);
  EXPECT_EQ(n6.count(), 4u);
}

TEST(SimulationStore, GatherProducesAlignedPointsAndValues) {
  d::SimulationStore store;
  store.add({0, 0}, 1.0);
  store.add({2, 0}, 2.0);
  store.add({5, 5}, 9.0);
  const auto n = store.neighbors_within({1, 0}, 2);
  ASSERT_EQ(n.count(), 2u);
  std::vector<std::vector<double>> points;
  std::vector<double> values;
  store.gather(n, points, values);
  ASSERT_EQ(points.size(), 2u);
  EXPECT_DOUBLE_EQ(points[0][0], 0.0);
  EXPECT_DOUBLE_EQ(points[1][0], 2.0);
  EXPECT_DOUBLE_EQ(values[0], 1.0);
  EXPECT_DOUBLE_EQ(values[1], 2.0);
}

TEST(SimulationStore, EmptyStoreHasNoNeighbors) {
  d::SimulationStore store;
  EXPECT_EQ(store.neighbors_within({0, 0}, 100).count(), 0u);
}

}  // namespace
