#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

#include "metrics/classification.hpp"
#include "metrics/error_metrics.hpp"
#include "metrics/noise_power.hpp"

namespace {

namespace m = ace::metrics;

TEST(NoisePower, MatchesHandComputedMse) {
  const std::vector<double> approx = {1.0, 2.0, 3.0};
  const std::vector<double> ref = {1.0, 2.5, 2.0};
  EXPECT_DOUBLE_EQ(m::noise_power(approx, ref), (0.0 + 0.25 + 1.0) / 3.0);
}

TEST(NoisePower, ZeroForIdenticalSequences) {
  const std::vector<double> x = {0.1, -0.4, 2.0};
  EXPECT_DOUBLE_EQ(m::noise_power(x, x), 0.0);
}

TEST(NoisePower, Validation) {
  EXPECT_THROW((void)m::noise_power({1.0}, {1.0, 2.0}), std::invalid_argument);
  EXPECT_THROW((void)m::noise_power({}, {}), std::invalid_argument);
}

TEST(NoisePowerComplex, CombinesBothComponents) {
  const std::vector<double> are = {1.0}, aim = {2.0};
  const std::vector<double> rre = {0.0}, rim = {0.0};
  EXPECT_DOUBLE_EQ(m::noise_power_complex(are, aim, rre, rim), 5.0);
  EXPECT_THROW(
      (void)m::noise_power_complex({1.0}, {1.0, 2.0}, {0.0}, {0.0}),
      std::invalid_argument);
}

TEST(DbConversion, RoundTripsAndClampsAtFloor) {
  EXPECT_NEAR(m::to_db(1.0), 0.0, 1e-12);
  EXPECT_NEAR(m::to_db(0.001), -30.0, 1e-9);
  EXPECT_NEAR(m::from_db(m::to_db(3.7e-5)), 3.7e-5, 1e-12);
  EXPECT_DOUBLE_EQ(m::to_db(0.0), -400.0);
  EXPECT_DOUBLE_EQ(m::to_db(-1.0), -400.0);
  EXPECT_DOUBLE_EQ(m::to_db(1e-80), -400.0);  // Below floor clamps.
}

TEST(EquivalentBits, InvertsThePowerModel) {
  // P = 2^-n / 12  at n = 10.
  const double p = std::ldexp(1.0, -10) / 12.0;
  EXPECT_NEAR(m::equivalent_bits(p), 10.0, 1e-12);
  EXPECT_THROW((void)m::equivalent_bits(0.0), std::invalid_argument);
  EXPECT_THROW((void)m::equivalent_bits(-1.0), std::invalid_argument);
}

TEST(EpsilonBits, MatchesEquation11) {
  // P̂ = 4·P  =>  ε = |log2 4| = 2 bits, symmetric in the ratio.
  EXPECT_NEAR(m::epsilon_bits(4.0e-6, 1.0e-6), 2.0, 1e-12);
  EXPECT_NEAR(m::epsilon_bits(1.0e-6, 4.0e-6), 2.0, 1e-12);
  EXPECT_DOUBLE_EQ(m::epsilon_bits(5.0e-4, 5.0e-4), 0.0);
  EXPECT_THROW((void)m::epsilon_bits(0.0, 1.0), std::invalid_argument);
  EXPECT_THROW((void)m::epsilon_bits(1.0, 0.0), std::invalid_argument);
}

TEST(EpsilonRelative, MatchesEquation12) {
  EXPECT_NEAR(m::epsilon_relative(0.9, 1.0), 0.1, 1e-12);
  EXPECT_NEAR(m::epsilon_relative(1.1, 1.0), 0.1, 1e-12);
  EXPECT_NEAR(m::epsilon_relative(-0.5, -1.0), 0.5, 1e-12);
  EXPECT_THROW((void)m::epsilon_relative(1.0, 0.0), std::invalid_argument);
}

TEST(Classification, AgreementFraction) {
  EXPECT_DOUBLE_EQ(
      m::classification_agreement({1, 2, 3, 4}, {1, 2, 0, 4}), 0.75);
  EXPECT_DOUBLE_EQ(m::classification_agreement({5}, {5}), 1.0);
  EXPECT_THROW((void)m::classification_agreement({}, {}),
               std::invalid_argument);
  EXPECT_THROW((void)m::classification_agreement({1}, {1, 2}),
               std::invalid_argument);
}

TEST(Argmax, FirstIndexWinsTies) {
  EXPECT_EQ(m::argmax({0.1, 0.9, 0.9}), 1u);
  EXPECT_EQ(m::argmax({-1.0}), 0u);
  EXPECT_THROW((void)m::argmax({}), std::invalid_argument);
}

}  // namespace
