#include "kriging/variogram_model.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <stdexcept>

#include "util/contract.hpp"

namespace {

namespace k = ace::kriging;

TEST(LinearVariogram, ShapeAndValidation) {
  const k::LinearVariogram v(0.1, 2.0);
  EXPECT_DOUBLE_EQ(v.gamma(0.0), 0.0);  // γ(0) = 0 by definition.
  EXPECT_DOUBLE_EQ(v.gamma(1.0), 2.1);
  EXPECT_DOUBLE_EQ(v.gamma(3.0), 6.1);
  EXPECT_THROW((void)v.gamma(-1.0), std::invalid_argument);
  // Parameter validity is a numerical contract: checked in Debug builds
  // (ContractViolation derives from invalid_argument), compiled out in
  // Release, where construction silently succeeds.
#if ACE_CONTRACTS_ENABLED
  EXPECT_THROW(k::LinearVariogram(-0.1, 1.0), std::invalid_argument);
  EXPECT_THROW(k::LinearVariogram(0.0, -1.0), std::invalid_argument);
#else
  EXPECT_NO_THROW(k::LinearVariogram(-0.1, 1.0));
  EXPECT_NO_THROW(k::LinearVariogram(0.0, -1.0));
#endif
  EXPECT_EQ(v.name(), "linear");
}

TEST(SphericalVariogram, ReachesSillAtRange) {
  const k::SphericalVariogram v(0.0, 4.0, 2.0);
  EXPECT_DOUBLE_EQ(v.gamma(0.0), 0.0);
  EXPECT_DOUBLE_EQ(v.gamma(2.0), 4.0);   // At range: sill.
  EXPECT_DOUBLE_EQ(v.gamma(10.0), 4.0);  // Beyond range: flat.
  // Interior value: 1.5·h − 0.5·h³ at h = 0.5 → 0.6875·sill.
  EXPECT_NEAR(v.gamma(1.0), 4.0 * 0.6875, 1e-12);
#if ACE_CONTRACTS_ENABLED
  EXPECT_THROW(k::SphericalVariogram(0.0, 1.0, 0.0), std::invalid_argument);
#else
  EXPECT_NO_THROW(k::SphericalVariogram(0.0, 1.0, 0.0));
#endif
}

TEST(ExponentialVariogram, ApproachesSillAsymptotically) {
  const k::ExponentialVariogram v(0.5, 3.0, 2.0);
  EXPECT_DOUBLE_EQ(v.gamma(0.0), 0.0);
  // At d = range, 1 − e⁻³ ≈ 0.9502.
  EXPECT_NEAR(v.gamma(2.0), 0.5 + 3.0 * 0.950212931, 1e-8);
  EXPECT_LT(v.gamma(100.0), 3.5 + 1e-9);
  EXPECT_GT(v.gamma(100.0), 3.49);
}

TEST(GaussianVariogram, SmoothNearOrigin) {
  const k::GaussianVariogram v(0.0, 2.0, 4.0);
  EXPECT_DOUBLE_EQ(v.gamma(0.0), 0.0);
  // Quadratic start: γ(d) ≈ sill·3·(d/a)² for small d.
  const double small = v.gamma(0.1);
  EXPECT_NEAR(small, 2.0 * 3.0 * (0.1 / 4.0) * (0.1 / 4.0), 1e-4);
  EXPECT_NEAR(v.gamma(100.0), 2.0, 1e-9);
}

TEST(PowerVariogram, ExponentBounds) {
  const k::PowerVariogram v(0.0, 1.5, 1.0);
  EXPECT_DOUBLE_EQ(v.gamma(2.0), 3.0);
#if ACE_CONTRACTS_ENABLED
  EXPECT_THROW(k::PowerVariogram(0.0, 1.0, 0.0), std::invalid_argument);
  EXPECT_THROW(k::PowerVariogram(0.0, 1.0, 2.0), std::invalid_argument);
#else
  EXPECT_NO_THROW(k::PowerVariogram(0.0, 1.0, 0.0));
  EXPECT_NO_THROW(k::PowerVariogram(0.0, 1.0, 2.0));
#endif
  EXPECT_NO_THROW(k::PowerVariogram(0.0, 1.0, 1.99));
}

/// Properties common to every model: γ(0) = 0, non-negative, monotone
/// non-decreasing over distance, clone() preserves behaviour.
class VariogramPropertyTest
    : public ::testing::TestWithParam<std::shared_ptr<k::VariogramModel>> {};

TEST_P(VariogramPropertyTest, ZeroAtOrigin) {
  EXPECT_DOUBLE_EQ(GetParam()->gamma(0.0), 0.0);
}

TEST_P(VariogramPropertyTest, NonNegativeAndMonotone) {
  const auto& v = *GetParam();
  double prev = v.gamma(0.0);
  for (double d = 0.25; d <= 20.0; d += 0.25) {
    const double g = v.gamma(d);
    EXPECT_GE(g, 0.0);
    EXPECT_GE(g, prev - 1e-12) << "at d = " << d;
    prev = g;
  }
}

TEST_P(VariogramPropertyTest, CloneMatchesOriginal) {
  const auto& v = *GetParam();
  const auto copy = v.clone();
  EXPECT_EQ(copy->name(), v.name());
  for (double d : {0.0, 0.5, 1.0, 3.0, 7.5, 19.0})
    EXPECT_DOUBLE_EQ(copy->gamma(d), v.gamma(d));
}

TEST_P(VariogramPropertyTest, DescribeMentionsFamily) {
  const auto& v = *GetParam();
  EXPECT_NE(v.describe().find(v.name()), std::string::npos);
}

INSTANTIATE_TEST_SUITE_P(
    AllModels, VariogramPropertyTest,
    ::testing::Values(
        std::make_shared<k::LinearVariogram>(0.2, 1.3),
        std::make_shared<k::LinearVariogram>(0.0, 0.0),
        std::make_shared<k::SphericalVariogram>(0.1, 2.0, 5.0),
        std::make_shared<k::SphericalVariogram>(0.0, 1.0, 0.5),
        std::make_shared<k::ExponentialVariogram>(0.3, 4.0, 3.0),
        std::make_shared<k::GaussianVariogram>(0.05, 1.5, 6.0),
        std::make_shared<k::PowerVariogram>(0.0, 0.8, 0.5),
        std::make_shared<k::PowerVariogram>(0.1, 1.2, 1.5)));

}  // namespace
