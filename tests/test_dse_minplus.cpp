#include "dse/min_plus_one.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace {

namespace d = ace::dse;

/// Separable analytic accuracy: λ(w) = Σ 6·(min(w_i, sat) − base). Monotone
/// non-decreasing in every variable, as quantization-noise accuracy is.
struct SeparableSurface {
  double operator()(const d::Config& w) const {
    double acc = 0.0;
    for (int wi : w) acc += 6.0 * (std::min(wi, 14) - 2);
    return acc;
  }
};

TEST(MinPlusOne, OptionValidation) {
  d::MinPlusOneOptions o;
  o.nv = 0;
  EXPECT_THROW((void)d::min_plus_one(SeparableSurface{}, o),
               std::invalid_argument);
  o.nv = 2;
  o.w_min = 10;
  o.w_max = 5;
  EXPECT_THROW((void)d::min_plus_one(SeparableSurface{}, o),
               std::invalid_argument);
  o.w_min = 1;
  o.w_max = 8;
  EXPECT_THROW((void)d::min_plus_one(SeparableSurface{}, o),
               std::invalid_argument);
}

TEST(MinPlusOnePhase1, FindsPerVariableMinimum) {
  // λ with both at 16: 2·6·12 = 144. Dropping one variable to wi loses
  // 6·(14 − wi)... constraint λm = 120 → need min(wi,14) >= 10.
  d::MinPlusOneOptions o;
  o.nv = 2;
  o.w_max = 16;
  o.w_min = 2;
  o.lambda_min = 120.0;
  const auto w_min = d::determine_min_word_lengths(SeparableSurface{}, o);
  ASSERT_EQ(w_min.size(), 2u);
  EXPECT_EQ(w_min[0], 10);
  EXPECT_EQ(w_min[1], 10);
}

TEST(MinPlusOnePhase1, FloorIsRespectedWhenConstraintNeverBreaks) {
  d::MinPlusOneOptions o;
  o.nv = 3;
  o.w_max = 12;
  o.w_min = 2;
  o.lambda_min = -1000.0;  // Always satisfied.
  const auto w_min = d::determine_min_word_lengths(SeparableSurface{}, o);
  for (int wi : w_min) EXPECT_EQ(wi, 2);
}

TEST(MinPlusOnePhase1, StuckAtMaxWhenConstraintUnreachable) {
  d::MinPlusOneOptions o;
  o.nv = 2;
  o.w_max = 16;
  o.w_min = 2;
  o.lambda_min = 1e9;  // Unreachable.
  const auto w_min = d::determine_min_word_lengths(SeparableSurface{}, o);
  // First decrement already violates, so the +1 backoff restores w_max.
  for (int wi : w_min) EXPECT_EQ(wi, 16);
}

TEST(MinPlusOnePhase2, ClimbsUntilConstraintMet) {
  d::MinPlusOneOptions o;
  o.nv = 3;
  o.w_max = 16;
  o.w_min = 2;
  o.lambda_min = 150.0;  // From (4,4,4): λ = 3·6·2 = 36 — must climb.
  const auto result =
      d::optimize_word_lengths(SeparableSurface{}, o, {4, 4, 4});
  EXPECT_TRUE(result.constraint_met);
  EXPECT_GE(result.final_lambda, o.lambda_min);
  // λ increments are 6 per bit: needs ceil((150−36)/6) = 19 steps.
  EXPECT_EQ(result.decisions.size(), 19u);
  // Greedy should not exceed the constraint by more than one step's gain.
  EXPECT_LT(result.final_lambda, o.lambda_min + 6.0);
}

TEST(MinPlusOnePhase2, SaturatesGracefullyWhenUnreachable) {
  d::MinPlusOneOptions o;
  o.nv = 2;
  o.w_max = 6;
  o.w_min = 2;
  o.lambda_min = 1e9;
  const auto result =
      d::optimize_word_lengths(SeparableSurface{}, o, {2, 2});
  EXPECT_FALSE(result.constraint_met);
  EXPECT_EQ(result.w_res, (d::Config{6, 6}));  // All at w_max.
}

TEST(MinPlusOnePhase2, StartSizeMismatchThrows) {
  d::MinPlusOneOptions o;
  o.nv = 3;
  EXPECT_THROW((void)d::optimize_word_lengths(SeparableSurface{}, o, {4, 4}),
               std::invalid_argument);
}

TEST(MinPlusOnePhase2, PrefersTheMostValuableVariable) {
  // Weighted surface: variable 0 contributes 3× more per bit.
  auto surface = [](const d::Config& w) {
    return 9.0 * (w[0] - 2) + 3.0 * (w[1] - 2);
  };
  d::MinPlusOneOptions o;
  o.nv = 2;
  o.w_max = 16;
  o.w_min = 2;
  o.lambda_min = 40.0;
  const auto result = d::optimize_word_lengths(surface, o, {2, 2});
  EXPECT_TRUE(result.constraint_met);
  // All early decisions should pick variable 0 (biggest gain).
  ASSERT_FALSE(result.decisions.empty());
  for (const std::size_t jc : result.decisions) EXPECT_EQ(jc, 0u);
}

TEST(MinPlusOne, FullAlgorithmEndsFeasibleAndRecordsPhases) {
  d::MinPlusOneOptions o;
  o.nv = 4;
  o.w_max = 16;
  o.w_min = 2;
  o.lambda_min = 200.0;
  const auto result = d::min_plus_one(SeparableSurface{}, o);
  EXPECT_TRUE(result.constraint_met);
  EXPECT_EQ(result.w_min.size(), 4u);
  EXPECT_EQ(result.w_res.size(), 4u);
  // Result dominates the phase-1 start.
  for (std::size_t i = 0; i < 4; ++i)
    EXPECT_GE(result.w_res[i], result.w_min[i]);
  EXPECT_GE(result.final_lambda, o.lambda_min);
}

TEST(MinPlusOnePhase1, AllMaxConfigIsEvaluatedExactlyOnce) {
  // Regression: every per-variable descent starts from the same all-Nmax
  // configuration; it used to be re-evaluated once per variable, costing
  // Nv − 1 redundant simulations before the descent even started.
  d::MinPlusOneOptions o;
  o.nv = 6;
  o.w_max = 16;
  o.w_min = 2;
  // With all six at 16, λ = 432; each variable's descent breaks the
  // constraint at wi = 11 (λ = 414), so every descent takes 5 evaluations.
  o.lambda_min = 416.0;
  const d::Config all_max(o.nv, o.w_max);
  std::size_t all_max_evals = 0;
  std::size_t total_evals = 0;
  const auto counted = [&](const d::Config& w) {
    ++total_evals;
    if (w == all_max) ++all_max_evals;
    return SeparableSurface{}(w);
  };
  const auto w_min = d::determine_min_word_lengths(counted, o);
  EXPECT_EQ(all_max_evals, 1u);
  // The hoisted warm-up is the only evaluation besides the descents.
  EXPECT_EQ(total_evals, 1u + 6u * 5u);  // 5 decrements per variable.
  EXPECT_EQ(w_min, d::determine_min_word_lengths(SeparableSurface{}, o));
}

TEST(MinPlusOne, BatchOverloadMatchesScalar) {
  auto surface = [](const d::Config& w) {
    double acc = 0.0;
    for (std::size_t i = 0; i < w.size(); ++i)
      acc += (4.0 + static_cast<double>(i)) * (w[i] - 2);
    return acc;
  };
  d::MinPlusOneOptions o;
  o.nv = 4;
  o.w_max = 14;
  o.w_min = 2;
  o.lambda_min = 180.0;

  const auto scalar = d::min_plus_one(surface, o);
  const d::BatchEvaluateFn batched = [&](const std::vector<d::Config>& b) {
    std::vector<double> values;
    for (const auto& w : b) values.push_back(surface(w));
    return values;
  };
  const auto batch = d::min_plus_one(batched, o);

  EXPECT_EQ(batch.w_min, scalar.w_min);
  EXPECT_EQ(batch.w_res, scalar.w_res);
  EXPECT_EQ(batch.decisions, scalar.decisions);
  EXPECT_DOUBLE_EQ(batch.final_lambda, scalar.final_lambda);
  EXPECT_EQ(batch.constraint_met, scalar.constraint_met);
}

TEST(MinPlusOne, SerializeEvaluatorPreservesIndexOrder) {
  std::vector<d::Config> seen;
  const d::EvaluateFn record = [&](const d::Config& w) {
    seen.push_back(w);
    return 0.0;
  };
  const auto batched = d::serialize_evaluator(record);
  const std::vector<d::Config> batch = {{1, 1}, {2, 2}, {3, 3}};
  const auto values = batched(batch);
  EXPECT_EQ(values, std::vector<double>(3, 0.0));
  EXPECT_EQ(seen, batch);
}

TEST(MinPlusOne, MaxStepsCapIsHonoured) {
  d::MinPlusOneOptions o;
  o.nv = 2;
  o.w_max = 16;
  o.w_min = 2;
  o.lambda_min = 1e9;
  o.max_steps = 3;
  const auto result = d::optimize_word_lengths(SeparableSurface{}, o, {2, 2});
  EXPECT_LE(result.decisions.size(), 3u);
  EXPECT_FALSE(result.constraint_met);
}

}  // namespace
