// Tests for the two related-work baselines: per-variable 1-D
// interpolation (ref [18]) and adaptive observation counts (ref [14]).
#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

#include "dse/adaptive_simulation.hpp"
#include "dse/interp1d.hpp"
#include "util/rng.hpp"

namespace {

namespace d = ace::dse;

d::Trajectory axis_sweep_trajectory() {
  // Phase-1-like pattern: sweep variable 0 with variable 1 pinned, then
  // variable 1 with variable 0 pinned — plus two off-axis points.
  d::Trajectory t;
  auto add = [&](int a, int b) {
    t.configs.push_back({a, b});
    t.values.push_back(3.0 * a + 5.0 * b);
  };
  for (int a = 16; a >= 10; --a) add(a, 16);
  for (int b = 16; b >= 10; --b) add(16, b);
  add(12, 12);
  add(13, 12);
  return t;
}

TEST(Interp1d, Validation) {
  d::Trajectory bad;
  bad.configs.push_back({1});
  EXPECT_THROW((void)d::replay_with_interp1d(bad, {},
                                             d::MetricKind::kAccuracyDb),
               std::invalid_argument);
  d::Interp1dOptions o;
  o.max_span = 0;
  EXPECT_THROW((void)d::replay_with_interp1d(axis_sweep_trajectory(), o,
                                             d::MetricKind::kAccuracyDb),
               std::invalid_argument);
}

TEST(Interp1d, InterpolatesAlongAxisSweeps) {
  const auto t = axis_sweep_trajectory();
  d::Interp1dOptions o;
  o.max_span = 3;
  const auto report =
      d::replay_with_interp1d(t, o, d::MetricKind::kAccuracyDb);
  EXPECT_EQ(report.stats.total, t.size());
  // The axis sweeps are exactly the pattern 1-D interpolation serves.
  EXPECT_GT(report.stats.interpolated, 4u);
  // λ is linear along each axis: 1-D linear interpolation is near exact.
  for (const auto& r : report.records)
    if (r.interpolated) EXPECT_LT(r.epsilon, 0.05) << "index " << r.index;
}

TEST(Interp1d, CannotServeOffAxisConfigurations) {
  // A trajectory moving diagonally defeats per-variable interpolation.
  d::Trajectory t;
  for (int i = 0; i < 12; ++i) {
    t.configs.push_back({i, i});
    t.values.push_back(2.0 * i);
  }
  const auto report =
      d::replay_with_interp1d(t, {}, d::MetricKind::kAccuracyDb);
  EXPECT_EQ(report.stats.interpolated, 0u);
  EXPECT_EQ(report.stats.simulated, 12u);
}

TEST(Interp1d, MaxSpanLimitsReach) {
  d::Trajectory t;
  for (int a : {0, 10, 20}) {
    t.configs.push_back({a});
    t.values.push_back(static_cast<double>(a));
  }
  t.configs.push_back({5});
  t.values.push_back(5.0);
  d::Interp1dOptions near;
  near.max_span = 2;
  const auto r1 = d::replay_with_interp1d(t, near, d::MetricKind::kAccuracyDb);
  EXPECT_EQ(r1.stats.interpolated, 0u);
  d::Interp1dOptions far;
  far.max_span = 10;
  const auto r2 = d::replay_with_interp1d(t, far, d::MetricKind::kAccuracyDb);
  EXPECT_EQ(r2.stats.interpolated, 1u);  // {5} from {0} and {10}.
  EXPECT_LT(r2.records.back().epsilon, 1e-9);
}

TEST(AdaptiveMean, Validation) {
  EXPECT_THROW((void)d::adaptive_mean(nullptr, 10), std::invalid_argument);
  auto one = [](std::size_t) { return 1.0; };
  EXPECT_THROW((void)d::adaptive_mean(one, 0), std::invalid_argument);
  d::AdaptiveSimOptions o;
  o.batch = 0;
  EXPECT_THROW((void)d::adaptive_mean(one, 10, o), std::invalid_argument);
  o = {};
  o.relative_half_width = 0.0;
  EXPECT_THROW((void)d::adaptive_mean(one, 10, o), std::invalid_argument);
}

TEST(AdaptiveMean, ConstantSequenceConvergesImmediately) {
  d::AdaptiveSimOptions o;
  o.batch = 8;
  const auto r = d::adaptive_mean([](std::size_t) { return 2.5; }, 1000, o);
  EXPECT_TRUE(r.converged);
  EXPECT_DOUBLE_EQ(r.mean, 2.5);
  EXPECT_EQ(r.observations, o.batch * o.min_batches);
}

TEST(AdaptiveMean, NoisySequenceStopsEarlyWithAccurateMean) {
  ace::util::Rng rng(60);
  std::vector<double> samples;
  for (int i = 0; i < 20000; ++i)
    samples.push_back(10.0 + rng.normal(0.0, 1.0));
  d::AdaptiveSimOptions o;
  o.relative_half_width = 0.02;
  const auto r = d::adaptive_mean(
      [&](std::size_t i) { return samples[i]; }, samples.size(), o);
  EXPECT_TRUE(r.converged);
  EXPECT_LT(r.observations, samples.size() / 2);  // Real savings.
  EXPECT_NEAR(r.mean, 10.0, 0.3);
}

TEST(AdaptiveMean, ExhaustsWhenToleranceUnreachable) {
  ace::util::Rng rng(61);
  d::AdaptiveSimOptions o;
  o.relative_half_width = 1e-6;
  o.batch = 16;
  const auto r = d::adaptive_mean(
      [&](std::size_t) { return rng.normal(5.0, 2.0); }, 256, o);
  EXPECT_FALSE(r.converged);
  EXPECT_EQ(r.observations, 256u);
}

TEST(AdaptiveMean, MatchesFullMeanWhenExhausted) {
  std::vector<double> xs = {1.0, 2.0, 3.0, 4.0};
  d::AdaptiveSimOptions o;
  o.relative_half_width = 1e-9;
  o.batch = 2;
  const auto r = d::adaptive_mean([&](std::size_t i) { return xs[i]; },
                                  xs.size(), o);
  EXPECT_DOUBLE_EQ(r.mean, 2.5);
}

}  // namespace
