#include "kriging/fit.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <functional>
#include <stdexcept>

#include "kriging/empirical_variogram.hpp"
#include "util/rng.hpp"

namespace {

namespace k = ace::kriging;

/// Builds an empirical variogram from 1-D samples of a function.
k::EmpiricalVariogram variogram_of(const std::function<double(double)>& f,
                                   int n_points) {
  std::vector<std::vector<double>> pts;
  std::vector<double> vals;
  for (int i = 0; i < n_points; ++i) {
    pts.push_back({static_cast<double>(i)});
    vals.push_back(f(static_cast<double>(i)));
  }
  return k::EmpiricalVariogram(pts, vals);
}

TEST(FamilyName, CoversAllFamilies) {
  EXPECT_EQ(k::family_name(k::ModelFamily::kLinear), "linear");
  EXPECT_EQ(k::family_name(k::ModelFamily::kSpherical), "spherical");
  EXPECT_EQ(k::family_name(k::ModelFamily::kExponential), "exponential");
  EXPECT_EQ(k::family_name(k::ModelFamily::kGaussian), "gaussian");
  EXPECT_EQ(k::family_name(k::ModelFamily::kPower), "power");
}

TEST(FitLinear, RecoversLinearTrendVariogram) {
  // λ(x) = 2x gives γ̂(d) = 2d² — convex growth the linear model tracks
  // with a positive slope.
  const auto ev = variogram_of([](double x) { return 2.0 * x; }, 12);
  const auto fit = k::fit_family(ev, k::ModelFamily::kLinear);
  EXPECT_EQ(fit.family, k::ModelFamily::kLinear);
  ASSERT_NE(fit.model, nullptr);
  // γ̂(d) = (2d)²/2 = 2d²: convex, so the linear fit has positive slope.
  const auto* linear = dynamic_cast<k::LinearVariogram*>(fit.model.get());
  ASSERT_NE(linear, nullptr);
  EXPECT_GT(linear->slope(), 0.0);
}

TEST(FitFlatField, AllFamiliesDegradeGracefully) {
  const auto ev = variogram_of([](double) { return 5.0; }, 10);
  for (const auto family :
       {k::ModelFamily::kLinear, k::ModelFamily::kSpherical,
        k::ModelFamily::kExponential, k::ModelFamily::kGaussian,
        k::ModelFamily::kPower}) {
    const auto fit = k::fit_family(ev, family);
    ASSERT_NE(fit.model, nullptr) << k::family_name(family);
    EXPECT_DOUBLE_EQ(fit.weighted_sse, 0.0);
    // Fitted model must be identically ~0.
    for (double d : {1.0, 3.0, 7.0})
      EXPECT_NEAR(fit.model->gamma(d), 0.0, 1e-9);
  }
}

TEST(FitBounded, RecoversSphericalSill) {
  // Synthesize an empirical variogram directly from a spherical model by
  // sampling a function whose increments follow it approximately: easier —
  // fit against bins manufactured from the model itself via a field with
  // matching structure is noisy; instead check SSE ordering below.
  const k::SphericalVariogram truth(0.0, 2.0, 6.0);
  // Build bins by hand: points on a line, values via a deterministic
  // profile whose variogram equals the model at small lags is hard; use
  // the fitter's own objective: generate bins from the true model.
  std::vector<std::vector<double>> pts;
  std::vector<double> vals;
  // Trick: for a *strictly increasing* 1-D profile v(x), γ̂(d) over a long
  // line approaches the average of (v(x+d)−v(x))²/2. Choose v so this
  // matches the spherical shape loosely; the test then only asserts that
  // the bounded families with a sill fit better than linear when the
  // empirical variogram saturates.
  const int n = 40;
  ace::util::Rng rng(11);
  double acc = 0.0;
  for (int i = 0; i < n; ++i) {
    pts.push_back({static_cast<double>(i)});
    // Bounded random walk saturates the variogram.
    acc = 0.7 * acc + rng.normal(0.0, 1.0);
    vals.push_back(acc);
  }
  k::EmpiricalVariogram ev(pts, vals);
  const auto all = k::fit_all(ev);
  ASSERT_FALSE(all.empty());
  // Results are sorted by SSE.
  for (std::size_t i = 1; i < all.size(); ++i)
    EXPECT_LE(all[i - 1].weighted_sse, all[i].weighted_sse);
  // A saturating (AR(1)) field: exponential/spherical/gaussian should beat
  // the unbounded linear model.
  const auto best = k::fit_best(ev);
  EXPECT_NE(best.family, k::ModelFamily::kLinear);
}

TEST(FitAll, ReturnsEveryRequestedFamily) {
  const auto ev = variogram_of([](double x) { return std::sqrt(x); }, 15);
  k::FitOptions options;
  const auto all = k::fit_all(ev, options);
  EXPECT_EQ(all.size(), options.families.size());
  for (const auto& fit : all) ASSERT_NE(fit.model, nullptr);
}

TEST(FitPower, NeverWorseThanLinear) {
  // The power family's exponent grid includes p = 1.0, which spans the
  // linear model — so its weighted SSE can never exceed linear's.
  for (int profile = 0; profile < 3; ++profile) {
    const auto ev = variogram_of(
        [profile](double x) {
          switch (profile) {
            case 0: return std::sqrt(x + 1.0);
            case 1: return 0.3 * x;
            default: return 0.05 * x * x;
          }
        },
        18);
    const auto power = k::fit_family(ev, k::ModelFamily::kPower);
    const auto linear = k::fit_family(ev, k::ModelFamily::kLinear);
    EXPECT_LE(power.weighted_sse, linear.weighted_sse + 1e-9)
        << "profile " << profile;
  }
}

TEST(Fit, ThrowsOnEmptyVariogram) {
  // Cannot construct an EmpiricalVariogram with < 2 points, so build one
  // and steal its type via a direct call with zero bins is impossible —
  // the validation happens in fit_family via the bin check. Validate the
  // EmpiricalVariogram precondition instead.
  EXPECT_THROW(k::EmpiricalVariogram({{0.0}}, {1.0}), std::invalid_argument);
}

TEST(FitBest, PrefersLowestSse) {
  const auto ev = variogram_of([](double x) { return x * x * 0.1; }, 12);
  const auto all = k::fit_all(ev);
  const auto best = k::fit_best(ev);
  EXPECT_DOUBLE_EQ(best.weighted_sse, all.front().weighted_sse);
}

}  // namespace
