// FactorCache and its KrigingPolicy wiring: the cache must change the
// amount of factorization work, never the optimizer-visible behaviour.
#include <gtest/gtest.h>

#include <cmath>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "dse/factor_cache.hpp"
#include "dse/kriging_policy.hpp"
#include "dse/min_plus_one.hpp"
#include "dse/scheduler.hpp"
#include "kriging/variogram_model.hpp"

namespace {

namespace d = ace::dse;
namespace k = ace::kriging;

/// Lattice support universe: point i = (i, 2i mod 7) with a smooth value.
struct Universe {
  std::vector<std::vector<double>> points;
  std::vector<double> values;

  explicit Universe(std::size_t n) {
    for (std::size_t i = 0; i < n; ++i) {
      const double x = static_cast<double>(i);
      const double y = static_cast<double>((2 * i) % 7);
      points.push_back({x, y});
      values.push_back(0.3 * x + 0.1 * y * y);
    }
  }

  std::vector<std::vector<double>> gather_points(
      const std::vector<std::size_t>& idx) const {
    std::vector<std::vector<double>> out;
    for (std::size_t i : idx) out.push_back(points[i]);
    return out;
  }
  std::vector<double> gather_values(
      const std::vector<std::size_t>& idx) const {
    std::vector<double> out;
    for (std::size_t i : idx) out.push_back(values[i]);
    return out;
  }
};

d::FactorCache::Pin acquire(d::FactorCache& cache, const Universe& u,
                            const std::vector<std::size_t>& idx,
                            const k::VariogramModel& model,
                            d::FactorAcquire& how,
                            std::uint64_t generation = 0,
                            double noise_nugget = 0.0) {
  return cache.acquire(idx, u.gather_points(idx), u.gather_values(idx),
                       model, k::l1_distance, noise_nugget, generation, how);
}

TEST(FactorCache, HitExtendFreshLifecycle) {
  const k::SphericalVariogram model(0.1, 2.0, 8.0);
  const Universe u(16);
  d::FactorCache cache(4);
  d::FactorAcquire how = d::FactorAcquire::kHit;

  k::KrigingSystem* first = nullptr;
  {
    const d::FactorCache::Pin pin = acquire(cache, u, {0, 1, 2}, model, how);
    ASSERT_TRUE(pin);
    first = pin.get();
    EXPECT_EQ(how, d::FactorAcquire::kFresh);
    EXPECT_EQ(cache.size(), 1u);
  }

  // Same index set (any order): exact hit on the same system object.
  {
    const d::FactorCache::Pin again =
        acquire(cache, u, {2, 0, 1}, model, how);
    EXPECT_EQ(how, d::FactorAcquire::kHit);
    EXPECT_EQ(again.get(), first);
  }

  // Superset: the entry is extended in place, not rebuilt.
  {
    const d::FactorCache::Pin extended =
        acquire(cache, u, {0, 1, 2, 3}, model, how);
    EXPECT_EQ(how, d::FactorAcquire::kExtend);
    EXPECT_EQ(extended.get(), first);
    EXPECT_EQ(extended->support_size(), 4u);
    EXPECT_EQ(cache.size(), 1u);
  }

  // Disjoint set: fresh entry.
  (void)acquire(cache, u, {10, 11, 12}, model, how);
  EXPECT_EQ(how, d::FactorAcquire::kFresh);
  EXPECT_EQ(cache.size(), 2u);

  cache.clear();
  EXPECT_EQ(cache.size(), 0u);
  (void)acquire(cache, u, {0, 1, 2}, model, how);
  EXPECT_EQ(how, d::FactorAcquire::kFresh);
}

TEST(FactorCache, ExtendedSystemAnswersLikeScratch) {
  const k::SphericalVariogram model(0.1, 2.0, 8.0);
  const Universe u(16);
  d::FactorCache cache(4);
  d::FactorAcquire how = d::FactorAcquire::kHit;

  (void)acquire(cache, u, {0, 1, 2, 3}, model, how);
  // Shrink-and-grow: drop 3, add 4 (one downdate + one append — within
  // the edit-cost limit; the dropped slot is an appended, removable row).
  const d::FactorCache::Pin edited =
      acquire(cache, u, {0, 1, 2, 4}, model, how);
  ASSERT_EQ(how, d::FactorAcquire::kExtend);

  const std::vector<std::size_t> idx = {0, 1, 2, 4};
  k::KrigingSystem scratch({k::SystemKind::kOrdinary}, u.gather_points(idx),
                           u.gather_values(idx), model);
  const std::vector<double> q = {2.5, 3.0};
  const auto a = edited->query(q);
  const auto b = scratch.query(q);
  ASSERT_TRUE(a && b);
  EXPECT_NEAR(a->estimate, b->estimate, 1e-10);
  EXPECT_NEAR(a->variance, b->variance, 1e-10);
}

TEST(FactorCache, EvictsLeastRecentlyUsedAtCapacity) {
  const k::SphericalVariogram model(0.1, 2.0, 8.0);
  const Universe u(16);
  d::FactorCache cache(2);
  d::FactorAcquire how = d::FactorAcquire::kHit;

  (void)acquire(cache, u, {0, 1, 2}, model, how);    // A
  (void)acquire(cache, u, {8, 9, 10}, model, how);   // B
  (void)acquire(cache, u, {0, 1, 2}, model, how);    // touch A
  EXPECT_EQ(how, d::FactorAcquire::kHit);
  (void)acquire(cache, u, {12, 13, 14}, model, how); // C evicts B
  EXPECT_EQ(cache.size(), 2u);
  (void)acquire(cache, u, {8, 9, 10}, model, how);   // B gone -> fresh
  EXPECT_EQ(how, d::FactorAcquire::kFresh);
}

TEST(FactorCache, CapacityZeroNeverCaches) {
  const k::SphericalVariogram model(0.1, 2.0, 8.0);
  const Universe u(8);
  d::FactorCache cache(0);
  d::FactorAcquire how = d::FactorAcquire::kHit;
  ASSERT_TRUE(acquire(cache, u, {0, 1, 2}, model, how));
  EXPECT_EQ(how, d::FactorAcquire::kFresh);
  EXPECT_EQ(cache.size(), 0u);
  ASSERT_TRUE(acquire(cache, u, {0, 1, 2}, model, how));
  EXPECT_EQ(how, d::FactorAcquire::kFresh);
}

// Regression (ISSUE 8): acquire() used to return a raw KrigingSystem*
// that the next acquire() could invalidate by LRU-evicting the entry (or
// reallocating entries_). Two interleaved acquire/solve sequences at
// capacity 1 turned into a use-after-free. The Pin handle must keep both
// systems alive and answering correctly, with eviction deferred.
TEST(FactorCache, PinSurvivesInterleavedAcquiresAtCapacityOne) {
  const k::SphericalVariogram model(0.1, 2.0, 8.0);
  const Universe u(16);
  d::FactorCache cache(1);
  d::FactorAcquire how = d::FactorAcquire::kHit;

  const std::vector<std::size_t> ia = {0, 1, 2};
  const std::vector<std::size_t> ib = {8, 9, 10};
  const d::FactorCache::Pin a = acquire(cache, u, ia, model, how);
  ASSERT_TRUE(a);
  // Disjoint set at capacity 1: without pinning this evicts A's entry
  // and frees the system `a` points at.
  const d::FactorCache::Pin b = acquire(cache, u, ib, model, how);
  ASSERT_TRUE(b);
  EXPECT_EQ(how, d::FactorAcquire::kFresh);
  EXPECT_NE(a.get(), b.get());

  // Interleaved solves through both pins still match scratch systems.
  const std::vector<double> q = {1.5, 2.0};
  k::KrigingSystem sa({k::SystemKind::kOrdinary}, u.gather_points(ia),
                      u.gather_values(ia), model);
  k::KrigingSystem sb({k::SystemKind::kOrdinary}, u.gather_points(ib),
                      u.gather_values(ib), model);
  const auto ra = a->query(q);
  const auto rb = b->query(q);
  const auto ea = sa.query(q);
  const auto eb = sb.query(q);
  ASSERT_TRUE(ra && rb && ea && eb);
  EXPECT_NEAR(ra->estimate, ea->estimate, 1e-10);
  EXPECT_NEAR(rb->estimate, eb->estimate, 1e-10);

  // Deferred eviction: both entries resident while pinned, trimmed back
  // to capacity once the pins are gone and a new acquire runs.
  EXPECT_EQ(cache.size(), 2u);
}

// Companion: once the pins drop, the next acquire() trims back to
// capacity and the cache behaves like a plain LRU again.
TEST(FactorCache, DeferredEvictionTrimsAfterPinsRelease) {
  const k::SphericalVariogram model(0.1, 2.0, 8.0);
  const Universe u(16);
  d::FactorCache cache(1);
  d::FactorAcquire how = d::FactorAcquire::kHit;
  {
    const d::FactorCache::Pin a = acquire(cache, u, {0, 1, 2}, model, how);
    const d::FactorCache::Pin b = acquire(cache, u, {8, 9, 10}, model, how);
    EXPECT_EQ(cache.size(), 2u);
  }
  (void)acquire(cache, u, {12, 13, 14}, model, how);
  EXPECT_EQ(how, d::FactorAcquire::kFresh);
  EXPECT_EQ(cache.size(), 1u);
}

// Regression (ISSUE 8): an exact index-set hit must not resurrect a
// system factored under a different variogram model. Entries are stamped
// with the caller's model generation; a query under a newer generation
// builds fresh and answers with the new model's numbers.
TEST(FactorCache, GenerationStampPreventsCrossModelHits) {
  const k::SphericalVariogram old_model(0.1, 2.0, 8.0);
  const k::SphericalVariogram new_model(0.5, 9.0, 3.0);
  const Universe u(16);
  d::FactorCache cache(4);
  d::FactorAcquire how = d::FactorAcquire::kHit;

  const std::vector<std::size_t> idx = {0, 1, 2, 3};
  (void)acquire(cache, u, idx, old_model, how, /*generation=*/0);
  ASSERT_EQ(how, d::FactorAcquire::kFresh);

  // Same index set, newer generation: must NOT hit (or edit) the stale
  // entry, and the answer must come from the new model.
  const d::FactorCache::Pin fresh =
      acquire(cache, u, idx, new_model, how, /*generation=*/1);
  EXPECT_EQ(how, d::FactorAcquire::kFresh);
  k::KrigingSystem scratch({k::SystemKind::kOrdinary}, u.gather_points(idx),
                           u.gather_values(idx), new_model);
  const std::vector<double> q = {1.5, 2.0};
  const auto got = fresh->query(q);
  const auto want = scratch.query(q);
  ASSERT_TRUE(got && want);
  EXPECT_NEAR(got->estimate, want->estimate, 1e-10);
  EXPECT_NEAR(got->variance, want->variance, 1e-10);

  // The stale-generation entry was dropped during trim, not kept around.
  EXPECT_EQ(cache.size(), 1u);
}

// The nugget is part of the cache key: a factorization assembled with a
// different noise_nugget has a different (shifted) diagonal, so reusing
// it across nugget settings would answer from the wrong system.
TEST(FactorCache, NuggetIsPartOfTheCacheKey) {
  const k::SphericalVariogram model(0.1, 2.0, 8.0);
  const Universe u(16);
  d::FactorCache cache(4);
  d::FactorAcquire how = d::FactorAcquire::kHit;

  const std::vector<std::size_t> idx = {0, 1, 2, 3};
  (void)acquire(cache, u, idx, model, how, /*generation=*/0,
                /*noise_nugget=*/0.0);
  ASSERT_EQ(how, d::FactorAcquire::kFresh);

  const d::FactorCache::Pin nuggeted = acquire(
      cache, u, idx, model, how, /*generation=*/0, /*noise_nugget=*/0.25);
  EXPECT_EQ(how, d::FactorAcquire::kFresh);

  // Same nugget again: now it hits.
  (void)acquire(cache, u, idx, model, how, /*generation=*/0,
                /*noise_nugget=*/0.25);
  EXPECT_EQ(how, d::FactorAcquire::kHit);

  // And the nuggeted entry answers like a scratch nuggeted system.
  k::SystemSpec spec;
  spec.noise_nugget = 0.25;
  k::KrigingSystem scratch(spec, u.gather_points(idx), u.gather_values(idx),
                           model);
  const std::vector<double> q = {1.5, 2.0};
  const auto got = nuggeted->query(q);
  const auto want = scratch.query(q);
  ASSERT_TRUE(got && want);
  EXPECT_NEAR(got->estimate, want->estimate, 1e-10);
  EXPECT_NEAR(got->variance, want->variance, 1e-10);
}

// A pinned entry must not be edited by an overlapping acquire(): the
// live pin expects the support it acquired. The overlap path builds
// fresh instead.
TEST(FactorCache, PinnedEntryIsNeverEditedByOverlap) {
  const k::SphericalVariogram model(0.1, 2.0, 8.0);
  const Universe u(16);
  d::FactorCache cache(4);
  d::FactorAcquire how = d::FactorAcquire::kHit;

  const d::FactorCache::Pin held = acquire(cache, u, {0, 1, 2, 3}, model, how);
  ASSERT_TRUE(held);
  const std::size_t held_support = held->support_size();

  // Overlapping query that would normally edit the held entry in place.
  const d::FactorCache::Pin other =
      acquire(cache, u, {0, 1, 2, 4}, model, how);
  EXPECT_EQ(how, d::FactorAcquire::kFresh);
  EXPECT_NE(other.get(), held.get());
  EXPECT_EQ(held->support_size(), held_support);
}

/// Deterministic smooth simulator over the word-length lattice.
double smooth_sim(const d::Config& w) {
  double acc = 0.0;
  for (std::size_t i = 0; i < w.size(); ++i)
    acc += (1.0 + 0.1 * static_cast<double>(i)) * static_cast<double>(w[i]);
  return acc;
}

/// Run min+1 through a policy with the given cache capacity.
std::pair<d::MinPlusOneResult, d::PolicyStats> run_min_plus_one(
    std::size_t cache_capacity) {
  d::PolicyOptions popt;
  popt.factor_cache_capacity = cache_capacity;
  d::KrigingPolicy policy(popt);
  d::MinPlusOneOptions opt;
  opt.nv = 3;
  opt.w_max = 12;
  opt.w_min = 2;
  opt.lambda_min = 25.0;
  const auto evaluate = d::policy_batch_evaluator(policy, smooth_sim);
  auto result = d::min_plus_one(evaluate, opt);
  return {std::move(result), policy.stats()};
}

// The policy-level guarantee of ISSUE 5: turning the cache on must leave
// every optimizer decision and final configuration bit-identical, while
// strictly reducing factorization work (counted by the new PolicyStats
// fields) whenever anything was interpolated.
TEST(FactorCachePolicy, CacheOnIsDecisionIdenticalAndCheaper) {
  const auto [direct, direct_stats] = run_min_plus_one(0);
  const auto [cached, cached_stats] = run_min_plus_one(8);

  EXPECT_EQ(direct.decisions, cached.decisions);
  EXPECT_EQ(direct.w_min, cached.w_min);
  EXPECT_EQ(direct.w_res, cached.w_res);
  EXPECT_EQ(direct.constraint_met, cached.constraint_met);
  EXPECT_NEAR(direct.final_lambda, cached.final_lambda,
              1e-9 * std::max(1.0, std::fabs(direct.final_lambda)));

  // Same evaluation stream on both paths.
  EXPECT_EQ(direct_stats.total, cached_stats.total);
  EXPECT_EQ(direct_stats.simulated, cached_stats.simulated);
  EXPECT_EQ(direct_stats.interpolated, cached_stats.interpolated);

  // The direct path never touches the cache counters.
  EXPECT_EQ(direct_stats.factor_cache_hits, 0u);
  EXPECT_EQ(direct_stats.factor_extends, 0u);

  if (direct_stats.interpolated > 0) {
    // Each solved query on the direct path pays at least one full
    // factorization (ladder rungs and gate-rejected solves may add more).
    EXPECT_GE(direct_stats.full_factorizations, direct_stats.interpolated);
    EXPECT_GT(cached_stats.factor_cache_hits + cached_stats.factor_extends,
              0u);
    EXPECT_LT(cached_stats.full_factorizations,
              direct_stats.full_factorizations);
  }
}

TEST(FactorCachePolicy, RcondAndRidgeCountersArepopulated) {
  const auto [result, stats] = run_min_plus_one(0);
  (void)result;
  if (stats.interpolated > 0) {
    // Every solved system reports a condition estimate — including solves
    // later rejected by the sanity/variance gates, so >= interpolated.
    EXPECT_GE(stats.rcond_per_solve.count(), stats.interpolated);
    EXPECT_GT(stats.rcond_per_solve.mean(), 0.0);
    EXPECT_LE(stats.ridge_fallbacks, stats.rcond_per_solve.count());
  } else {
    GTEST_SKIP() << "workload produced no interpolations";
  }
}

}  // namespace
