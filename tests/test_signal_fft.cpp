#include "signal/fft.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <complex>
#include <numbers>
#include <stdexcept>

#include "metrics/noise_power.hpp"
#include "signal/generator.hpp"
#include "util/rng.hpp"

namespace {

namespace s = ace::signal;
using Complex = std::complex<double>;

std::vector<Complex> naive_dft(const std::vector<Complex>& x) {
  const std::size_t n = x.size();
  std::vector<Complex> out(n);
  for (std::size_t k = 0; k < n; ++k) {
    Complex acc = 0.0;
    for (std::size_t t = 0; t < n; ++t) {
      const double angle = -2.0 * std::numbers::pi *
                           static_cast<double>(k * t) / static_cast<double>(n);
      acc += x[t] * Complex(std::cos(angle), std::sin(angle));
    }
    out[k] = acc;
  }
  return out;
}

std::vector<Complex> random_frame(ace::util::Rng& rng, std::size_t n) {
  std::vector<Complex> frame(n);
  for (auto& v : frame) v = Complex(rng.uniform(-1.0, 1.0),
                                    rng.uniform(-1.0, 1.0));
  return frame;
}

TEST(Fft, RejectsNonPowerOfTwo) {
  std::vector<Complex> bad(6);
  EXPECT_THROW(s::fft(bad), std::invalid_argument);
  std::vector<Complex> one(1);
  EXPECT_THROW(s::fft(one), std::invalid_argument);
}

TEST(Fft, MatchesNaiveDft) {
  ace::util::Rng rng(10);
  for (std::size_t n : {2u, 4u, 8u, 16u, 64u}) {
    auto frame = random_frame(rng, n);
    const auto expected = naive_dft(frame);
    s::fft(frame);
    for (std::size_t k = 0; k < n; ++k)
      EXPECT_LT(std::abs(frame[k] - expected[k]), 1e-9)
          << "size " << n << " bin " << k;
  }
}

TEST(Fft, ImpulseGivesFlatSpectrum) {
  std::vector<Complex> frame(8, 0.0);
  frame[0] = 1.0;
  s::fft(frame);
  for (const auto& bin : frame) EXPECT_LT(std::abs(bin - Complex(1.0)), 1e-12);
}

TEST(Fft, SingleToneLandsInOneBin) {
  const std::size_t n = 64;
  std::vector<Complex> frame(n);
  for (std::size_t t = 0; t < n; ++t)
    frame[t] = std::cos(2.0 * std::numbers::pi * 4.0 * static_cast<double>(t) /
                        static_cast<double>(n));
  s::fft(frame);
  EXPECT_NEAR(std::abs(frame[4]), 32.0, 1e-9);   // n/2.
  EXPECT_NEAR(std::abs(frame[60]), 32.0, 1e-9);  // Conjugate bin.
  EXPECT_LT(std::abs(frame[10]), 1e-9);
}

TEST(Fft, IfftRoundTrip) {
  ace::util::Rng rng(11);
  auto frame = random_frame(rng, 32);
  const auto original = frame;
  s::fft(frame);
  s::ifft(frame);
  for (std::size_t i = 0; i < frame.size(); ++i)
    EXPECT_LT(std::abs(frame[i] - original[i]), 1e-10);
}

TEST(Fft, ParsevalEnergyConservation) {
  ace::util::Rng rng(12);
  auto frame = random_frame(rng, 64);
  double time_energy = 0.0;
  for (const auto& v : frame) time_energy += std::norm(v);
  s::fft(frame);
  double freq_energy = 0.0;
  for (const auto& v : frame) freq_energy += std::norm(v);
  EXPECT_NEAR(freq_energy, 64.0 * time_energy, 1e-6 * freq_energy);
}

TEST(QuantizedFft, ConstructionAndVariableCount) {
  ace::util::Rng rng(13);
  const std::vector<std::vector<Complex>> cal = {random_frame(rng, 64)};
  const s::QuantizedFft q(64, cal);
  EXPECT_EQ(q.size(), 64u);
  EXPECT_EQ(q.stage_count(), 6u);
  EXPECT_EQ(q.variable_count(), 10u);
  EXPECT_THROW(s::QuantizedFft(48, cal), std::invalid_argument);
  EXPECT_THROW(s::QuantizedFft(64, {}), std::invalid_argument);
  EXPECT_THROW(s::QuantizedFft(2, cal), std::invalid_argument);
}

TEST(QuantizedFft, InputValidation) {
  ace::util::Rng rng(14);
  const std::vector<std::vector<Complex>> cal = {random_frame(rng, 16)};
  const s::QuantizedFft q(16, cal);  // 4 stages -> 6 variables.
  EXPECT_EQ(q.variable_count(), 6u);
  const auto frame = random_frame(rng, 16);
  EXPECT_THROW((void)q.transform(frame, std::vector<int>(5, 12)),
               std::invalid_argument);
  EXPECT_THROW((void)q.transform(random_frame(rng, 8),
                                 std::vector<int>(6, 12)),
               std::invalid_argument);
  EXPECT_THROW((void)q.transform(frame, std::vector<int>(6, 1)),
               std::invalid_argument);
}

TEST(QuantizedFft, WideWordsConvergeToReference) {
  ace::util::Rng rng(15);
  const std::vector<std::vector<Complex>> cal = {random_frame(rng, 64),
                                                 random_frame(rng, 64)};
  const s::QuantizedFft q(64, cal);
  auto frame = cal[0];
  auto reference = frame;
  s::fft(reference);
  const auto approx = q.transform(frame, std::vector<int>(10, 44));
  for (std::size_t i = 0; i < frame.size(); ++i)
    EXPECT_LT(std::abs(approx[i] - reference[i]), 1e-8);
}

class FftMonotoneTest : public ::testing::TestWithParam<int> {};

TEST_P(FftMonotoneTest, NoiseShrinksWithWiderWords) {
  const int w = GetParam();
  ace::util::Rng rng(16);
  const auto frame = random_frame(rng, 64);
  const s::QuantizedFft q(64, {frame});
  auto reference = frame;
  s::fft(reference);
  auto power_at = [&](int width) {
    const auto out = q.transform(frame, std::vector<int>(10, width));
    double acc = 0.0;
    for (std::size_t i = 0; i < out.size(); ++i)
      acc += std::norm(out[i] - reference[i]);
    return acc / static_cast<double>(out.size());
  };
  EXPECT_LT(power_at(w + 4), power_at(w));
}

INSTANTIATE_TEST_SUITE_P(Widths, FftMonotoneTest,
                         ::testing::Values(8, 10, 12, 14, 16));

TEST(QuantizedFft, Deterministic) {
  ace::util::Rng rng(17);
  const auto frame = random_frame(rng, 64);
  const s::QuantizedFft q(64, {frame});
  const std::vector<int> w(10, 12);
  const auto a = q.transform(frame, w);
  const auto b = q.transform(frame, w);
  for (std::size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i], b[i]);
}

}  // namespace
