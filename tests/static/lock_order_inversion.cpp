// Compile-time lock-order fixture — this TU MUST FAIL to compile under
// clang++ -Wthread-safety -Wthread-safety-beta -Werror: the function
// below acquires the two mutexes against their declared
// ACE_ACQUIRED_AFTER edge. tools/run_static_analysis.sh compiles it and
// treats SUCCESS as the failure — if this ever starts compiling, the
// acquisition-order annotations have silently stopped being enforced.
// The correctly-ordered twin (lock_order_ordered.cpp) must keep
// compiling, so the rejection is attributable to the inversion alone.
#include "util/mutex.hpp"
#include "util/thread_annotations.hpp"

namespace {

ace::util::Mutex first_lock;
ace::util::Mutex second_lock ACE_ACQUIRED_AFTER(first_lock);

int inverted() {
  const ace::util::LockGuard outer(second_lock);
  const ace::util::LockGuard inner(first_lock);  // Out of declared order.
  return 0;
}

}  // namespace

int main() { return inverted(); }
