// Compile-time lock-order fixture — the passing twin of
// lock_order_inversion.cpp. tools/run_static_analysis.sh syntax-checks
// this TU with clang++ -Wthread-safety -Wthread-safety-beta -Werror and
// requires it to be ACCEPTED: the declared ACE_ACQUIRED_AFTER edge is
// honoured, so the analysis has nothing to reject — proving the
// inversion twin's rejection comes from the ordering violation and not
// from some unrelated diagnostic in these headers.
#include "util/mutex.hpp"
#include "util/thread_annotations.hpp"

namespace {

ace::util::Mutex first_lock;
ace::util::Mutex second_lock ACE_ACQUIRED_AFTER(first_lock);

int ordered() {
  const ace::util::LockGuard outer(first_lock);
  const ace::util::LockGuard inner(second_lock);
  return 0;
}

}  // namespace

int main() { return ordered(); }
