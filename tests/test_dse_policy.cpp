#include "dse/kriging_policy.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstdint>
#include <stdexcept>
#include <thread>
#include <vector>

#include "util/thread_pool.hpp"

namespace {

namespace d = ace::dse;

/// Smooth 2-D test surface: λ(x, y) = −(x + 2y), linear so kriging with the
/// fitted variogram interpolates it very accurately.
double linear_surface(const d::Config& c) {
  return -(static_cast<double>(c[0]) + 2.0 * static_cast<double>(c[1]));
}

d::PolicyOptions small_fit_options(int distance, std::size_t nn_min = 1) {
  d::PolicyOptions o;
  o.distance = distance;
  o.nn_min = nn_min;
  // High enough that the six-point seeding clusters below are fully
  // simulated before kriging can kick in.
  o.min_fit_points = 6;
  return o;
}

TEST(KrigingPolicy, RejectsNegativeDistance) {
  d::PolicyOptions o;
  o.distance = -1;
  EXPECT_THROW(d::KrigingPolicy{o}, std::invalid_argument);
}

TEST(KrigingPolicy, FirstEvaluationsAreSimulated) {
  d::KrigingPolicy policy(small_fit_options(2));
  std::size_t calls = 0;
  auto sim = [&](const d::Config& c) {
    ++calls;
    return linear_surface(c);
  };
  const auto o1 = policy.evaluate({0, 0}, sim);
  EXPECT_FALSE(o1.interpolated);
  EXPECT_DOUBLE_EQ(o1.value, 0.0);
  const auto o2 = policy.evaluate({4, 4}, sim);  // Far from {0,0}.
  EXPECT_FALSE(o2.interpolated);
  EXPECT_EQ(calls, 2u);
  EXPECT_EQ(policy.store().size(), 2u);
  EXPECT_EQ(policy.stats().simulated, 2u);
  EXPECT_EQ(policy.stats().interpolated, 0u);
}

TEST(KrigingPolicy, InterpolatesWhenNeighborhoodIsRich) {
  d::KrigingPolicy policy(small_fit_options(3));
  std::size_t calls = 0;
  auto sim = [&](const d::Config& c) {
    ++calls;
    return linear_surface(c);
  };
  // Seed a dense cluster by simulation.
  for (const d::Config& c : std::vector<d::Config>{
           {0, 0}, {1, 0}, {0, 1}, {2, 0}, {1, 1}, {0, 2}})
    (void)policy.evaluate(c, sim);
  ASSERT_EQ(calls, 6u);

  // Query inside the cluster: must interpolate, not simulate.
  const auto o = policy.evaluate({1, 2}, sim);
  EXPECT_TRUE(o.interpolated);
  EXPECT_EQ(calls, 6u);  // No new simulation.
  EXPECT_GT(o.neighbors, 1u);
  // Linear surface: interpolation should be near-exact.
  EXPECT_NEAR(o.value, linear_surface({1, 2}), 0.5);
}

TEST(KrigingPolicy, InterpolatedConfigsNeverEnterTheStore) {
  // The paper's rule: interpolated points are not reused for kriging.
  d::KrigingPolicy policy(small_fit_options(4));
  auto sim = [&](const d::Config& c) { return linear_surface(c); };
  for (const d::Config& c : std::vector<d::Config>{
           {0, 0}, {1, 0}, {0, 1}, {2, 0}, {1, 1}, {0, 2}})
    (void)policy.evaluate(c, sim);
  const std::size_t before = policy.store().size();
  const auto o = policy.evaluate({1, 2}, sim);
  ASSERT_TRUE(o.interpolated);
  EXPECT_EQ(policy.store().size(), before);
  // Every stored config was simulated: store size == simulated count.
  EXPECT_EQ(policy.store().size(), policy.stats().simulated);
}

TEST(KrigingPolicy, NnMinGatesInterpolation) {
  // With nn_min = 10, a 6-point neighbourhood is not enough.
  d::KrigingPolicy policy(small_fit_options(4, /*nn_min=*/10));
  std::size_t calls = 0;
  auto sim = [&](const d::Config& c) {
    ++calls;
    return linear_surface(c);
  };
  for (const d::Config& c : std::vector<d::Config>{
           {0, 0}, {1, 0}, {0, 1}, {2, 0}, {1, 1}, {0, 2}})
    (void)policy.evaluate(c, sim);
  const auto o = policy.evaluate({1, 2}, sim);
  EXPECT_FALSE(o.interpolated);
  EXPECT_EQ(calls, 7u);
}

TEST(KrigingPolicy, DistanceZeroOnlyMatchesExactRepeats) {
  d::PolicyOptions o = small_fit_options(0);
  o.min_fit_points = 1;
  d::KrigingPolicy policy(o);
  auto sim = [&](const d::Config& c) { return linear_surface(c); };
  (void)policy.evaluate({3, 3}, sim);
  const auto far = policy.evaluate({3, 4}, sim);
  EXPECT_FALSE(far.interpolated);
}

TEST(KrigingPolicy, StatsTrackNeighborCounts) {
  d::KrigingPolicy policy(small_fit_options(4));
  auto sim = [&](const d::Config& c) { return linear_surface(c); };
  for (const d::Config& c : std::vector<d::Config>{
           {0, 0}, {1, 0}, {0, 1}, {2, 0}, {1, 1}, {0, 2}})
    (void)policy.evaluate(c, sim);
  (void)policy.evaluate({1, 2}, sim);
  (void)policy.evaluate({2, 1}, sim);
  const auto& stats = policy.stats();
  EXPECT_EQ(stats.total, 8u);
  EXPECT_EQ(stats.interpolated, 2u);
  EXPECT_EQ(stats.simulated, 6u);
  EXPECT_GT(stats.neighbors_per_interpolation.mean(), 1.0);
  EXPECT_NEAR(stats.interpolated_fraction(), 0.25, 1e-12);
}

TEST(KrigingPolicy, RefitModelRequiresEnoughData) {
  d::KrigingPolicy policy(small_fit_options(3));
  EXPECT_FALSE(policy.refit_model());
  auto sim = [&](const d::Config& c) { return linear_surface(c); };
  (void)policy.evaluate({0, 0}, sim);
  EXPECT_FALSE(policy.refit_model());  // One point: no pairs.
  (void)policy.evaluate({5, 5}, sim);
  // Two points produce a single bin — still not fittable (needs 2 bins).
  EXPECT_FALSE(policy.refit_model());
  (void)policy.evaluate({9, 0}, sim);
  EXPECT_TRUE(policy.refit_model());
  EXPECT_NE(policy.model(), nullptr);
}

TEST(KrigingPolicy, RejectsNegativeVarianceGate) {
  d::PolicyOptions o;
  o.variance_gate = -0.5;
  EXPECT_THROW(d::KrigingPolicy{o}, std::invalid_argument);
}

TEST(KrigingPolicy, RegressionKrigingCapturesLinearTrend) {
  // λ = 10·x0 + 4·x1 is a pure linear trend: with drift = kLinear the
  // residual field is ~0, so interpolation is near exact even where the
  // support sits entirely on one side of the query.
  auto surface = [](const d::Config& c) {
    return 10.0 * c[0] + 4.0 * c[1];
  };
  d::PolicyOptions o = small_fit_options(4);
  o.drift = ace::kriging::DriftKind::kLinear;
  d::KrigingPolicy policy(o);
  for (const d::Config& c : std::vector<d::Config>{
           {0, 0}, {1, 0}, {0, 1}, {2, 0}, {1, 1}, {0, 2}, {2, 2}})
    (void)policy.evaluate(c, surface);
  ASSERT_EQ(policy.trend().size(), 3u);
  EXPECT_NEAR(policy.trend()[1], 10.0, 1e-6);
  EXPECT_NEAR(policy.trend()[2], 4.0, 1e-6);
  const auto o1 = policy.evaluate({3, 2}, surface);  // Outside the hull.
  if (o1.interpolated)
    EXPECT_NEAR(o1.value, surface({3, 2}), 1e-4);
}

TEST(KrigingPolicy, TrendFallsBackToMeanOnDegenerateDesign) {
  // All stored points on one axis: the linear design is rank deficient,
  // the trend degrades to mean-only, and evaluation still works.
  auto surface = [](const d::Config& c) { return 2.0 * c[0]; };
  d::PolicyOptions o = small_fit_options(3);
  o.drift = ace::kriging::DriftKind::kLinear;
  o.min_fit_points = 4;
  // Off-axis queries against a collinear support extrapolate wildly, which
  // the sanity guard would veto; this test is about the degenerate-trend
  // path, so let the interpolation through.
  o.sanity_span = 0.0;
  d::KrigingPolicy policy(o);
  for (int x = 0; x < 6; ++x) (void)policy.evaluate({x, 7}, surface);
  ASSERT_TRUE(policy.refit_model());
  EXPECT_EQ(policy.trend().size(), 1u);  // Mean fallback.
  // A stored configuration would be an exact hit; query just off the axis.
  const auto r = policy.evaluate({2, 8}, surface);
  EXPECT_TRUE(r.interpolated);
}

TEST(KrigingPolicy, VarianceGateRejectsFarExtrapolations) {
  auto surface = [](const d::Config& c) {
    return static_cast<double>(c[0] * c[0]);
  };
  d::PolicyOptions gated = small_fit_options(12);
  gated.variance_gate = 0.05;  // Very strict.
  d::KrigingPolicy policy(gated);
  std::size_t sims = 0;
  auto counted = [&](const d::Config& c) {
    ++sims;
    return surface(c);
  };
  for (int x = 0; x < 8; ++x) (void)policy.evaluate({x, 0}, counted);
  // A far query inside the radius but outside the cluster: high kriging
  // variance, the gate forces simulation.
  (void)policy.evaluate({0, 11}, counted);
  EXPECT_GT(policy.stats().variance_rejections, 0u);
  EXPECT_EQ(policy.stats().interpolated, 0u);
}

TEST(KrigingPolicy, L2MetricShrinksTheNeighbourhood) {
  auto surface = [](const d::Config& c) {
    return static_cast<double>(c[0] + c[1]);
  };
  d::PolicyOptions l1 = small_fit_options(2);
  d::PolicyOptions l2 = small_fit_options(2);
  l2.use_l2_distance = true;
  d::KrigingPolicy pa(l1), pb(l2);
  for (const d::Config& c : std::vector<d::Config>{
           {0, 0}, {1, 1}, {2, 2}, {1, 0}, {0, 1}, {2, 1}})
    (void)pa.evaluate(c, surface);
  for (const d::Config& c : std::vector<d::Config>{
           {0, 0}, {1, 1}, {2, 2}, {1, 0}, {0, 1}, {2, 1}})
    (void)pb.evaluate(c, surface);
  // Query {1, 2}: L1 ball of radius 2 holds more points than the L2 ball.
  const auto na = pa.store().neighbors_within({1, 2}, 2);
  const auto nb = pb.store().neighbors_within_l2({1, 2}, 2.0);
  EXPECT_GE(na.count(), nb.count());
  EXPECT_GT(nb.count(), 0u);
}

TEST(KrigingPolicy, SanityGuardRejectsWildEstimates) {
  // Force a pathological support: after a cliff in the field, a gaussian
  // variogram can produce estimates far outside the support range. With
  // the guard enabled such interpolations must fall back to simulation,
  // so every produced value stays within the guard's envelope.
  auto cliff = [](const d::Config& c) {
    return c[0] >= 6 ? 400.0 : 20.0 * c[0];
  };
  d::PolicyOptions o = small_fit_options(5);
  o.sanity_span = 1.0;
  d::KrigingPolicy policy(o);
  for (int x = 0; x <= 10; ++x)
    for (int y : {0, 1}) {
      const auto r = policy.evaluate({x, y}, cliff);
      if (!r.interpolated) continue;
      EXPECT_GE(r.value, -420.0);
      EXPECT_LE(r.value, 820.0);  // Within ~1 span of the field range.
    }
}

TEST(KrigingPolicy, SanityGuardCanBeDisabled) {
  d::PolicyOptions o = small_fit_options(3);
  o.sanity_span = 0.0;
  EXPECT_NO_THROW(d::KrigingPolicy{o});
}

TEST(KrigingPolicy, ExactRepeatIsServedFromTheStore) {
  d::KrigingPolicy policy(small_fit_options(2));
  std::size_t calls = 0;
  auto sim = [&](const d::Config& c) {
    ++calls;
    return linear_surface(c);
  };
  const auto first = policy.evaluate({3, 3}, sim);
  const auto repeat = policy.evaluate({3, 3}, sim);
  EXPECT_EQ(calls, 1u);  // No re-simulation of a stored configuration.
  EXPECT_FALSE(first.cached);
  EXPECT_TRUE(repeat.cached);
  EXPECT_FALSE(repeat.interpolated);
  EXPECT_DOUBLE_EQ(repeat.value, first.value);
  EXPECT_EQ(policy.store().size(), 1u);
  EXPECT_EQ(policy.stats().exact_hits, 1u);
  EXPECT_EQ(policy.stats().simulated, 1u);
  EXPECT_EQ(policy.stats().total, 2u);
}

TEST(KrigingPolicy, FailedRefitBacksOffUntilPeriodElapses) {
  // A fit attempt that fails (all stored pairs in one distance bin) must
  // not be retried on every subsequent evaluation — only after another
  // refit_period of new simulations.
  d::PolicyOptions o;
  o.distance = 2;
  o.nn_min = 1;
  o.min_fit_points = 2;
  o.refit_period = 4;
  d::KrigingPolicy policy(o);
  auto sim = [](const d::Config& c) { return linear_surface(c); };

  (void)policy.evaluate({0, 0}, sim);
  (void)policy.evaluate({1, 0}, sim);
  // Rich neighbourhood triggers the first fit attempt: two stored points
  // give a single variogram bin, so the fit fails.
  (void)policy.evaluate({0, 1}, sim);
  EXPECT_EQ(policy.stats().failed_refits, 1u);
  EXPECT_EQ(policy.model(), nullptr);

  // The next evaluations are still below the backoff threshold: no new
  // attempts pile up even though every one of them would like a model.
  (void)policy.evaluate({1, 1}, sim);
  (void)policy.evaluate({2, 1}, sim);
  (void)policy.evaluate({2, 0}, sim);
  EXPECT_EQ(policy.stats().failed_refits, 1u);

  // Enough new simulations accumulated: the retry happens and succeeds.
  (void)policy.evaluate({1, 2}, sim);
  EXPECT_EQ(policy.stats().failed_refits, 1u);
  EXPECT_EQ(policy.stats().refits, 1u);
  EXPECT_NE(policy.model(), nullptr);
}

TEST(KrigingPolicyBatch, ParallelIsBitIdenticalToSerial) {
  // The batch engine partitions against the store at entry and folds in
  // index order, so a pool must not change a single bit of the outcomes.
  const std::vector<std::vector<d::Config>> batches = {
      {{0, 0}, {1, 0}, {0, 1}, {2, 0}, {1, 1}, {0, 2}},
      {{1, 2}, {2, 1}, {2, 2}, {1, 2}, {3, 1}},  // Includes a duplicate.
      {{3, 2}, {2, 3}, {3, 3}, {4, 2}, {0, 0}},  // Includes a store hit.
  };
  auto run = [&](ace::util::ThreadPool* pool) {
    d::KrigingPolicy policy(small_fit_options(3));
    auto sim = [](const d::Config& c) { return linear_surface(c); };
    std::vector<d::EvalOutcome> outcomes;
    for (const auto& batch : batches) {
      const auto out = policy.evaluate_batch(batch, sim, pool);
      outcomes.insert(outcomes.end(), out.begin(), out.end());
    }
    return std::make_tuple(outcomes, policy.stats().simulated,
                           policy.stats().interpolated,
                           policy.stats().exact_hits,
                           policy.store().values());
  };
  const auto serial = run(nullptr);
  for (const std::size_t workers : {1u, 2u, 4u}) {
    ace::util::ThreadPool pool(workers);
    EXPECT_EQ(run(&pool), serial);
  }
}

TEST(KrigingPolicyBatch, DuplicateCandidatesSimulateOnce) {
  d::KrigingPolicy policy(small_fit_options(2));
  std::atomic<std::size_t> calls{0};
  auto sim = [&](const d::Config& c) {
    ++calls;
    return linear_surface(c);
  };
  const auto out =
      policy.evaluate_batch({{5, 5}, {9, 9}, {5, 5}}, sim, nullptr);
  EXPECT_EQ(calls.load(), 2u);  // The duplicate aliases the first result.
  ASSERT_EQ(out.size(), 3u);
  EXPECT_TRUE(out[2].cached);
  EXPECT_DOUBLE_EQ(out[2].value, out[0].value);
  EXPECT_EQ(policy.stats().simulated, 2u);
  EXPECT_EQ(policy.stats().exact_hits, 1u);
  EXPECT_EQ(policy.stats().total, 3u);
  EXPECT_EQ(policy.store().size(), 2u);
}

TEST(KrigingPolicyBatch, PartitionSeesTheStoreAtEntryOnly) {
  // Sequential evaluation would let late batch members interpolate off
  // early ones; the batch engine decides everything up front, so a tight
  // cluster hitting an empty store is fully simulated.
  d::KrigingPolicy policy(small_fit_options(3));
  auto sim = [](const d::Config& c) { return linear_surface(c); };
  const auto out = policy.evaluate_batch(
      {{0, 0}, {1, 0}, {0, 1}, {2, 0}, {1, 1}, {0, 2}, {1, 2}, {2, 1}}, sim,
      nullptr);
  EXPECT_EQ(policy.stats().simulated, 8u);
  EXPECT_EQ(policy.stats().interpolated, 0u);
  for (const auto& o : out) EXPECT_FALSE(o.interpolated);
  // A follow-up batch does see the enriched store.
  (void)policy.evaluate_batch({{1, 1}, {2, 2}}, sim, nullptr);
  EXPECT_EQ(policy.stats().exact_hits, 1u);   // {1,1} is stored.
  EXPECT_GT(policy.stats().interpolated, 0u); // {2,2} interpolates.
}

TEST(KrigingPolicy, ConstantSurfaceInterpolatesToConstant) {
  d::KrigingPolicy policy(small_fit_options(4));
  auto sim = [](const d::Config&) { return 7.0; };
  for (const d::Config& c : std::vector<d::Config>{
           {0, 0}, {1, 0}, {0, 1}, {1, 1}, {2, 0}, {0, 2}})
    (void)policy.evaluate(c, sim);
  const auto o = policy.evaluate({1, 2}, [](const d::Config&) {
    ADD_FAILURE() << "constant surface should interpolate";
    return 0.0;
  });
  EXPECT_TRUE(o.interpolated);
  EXPECT_NEAR(o.value, 7.0, 1e-6);
}

// Regression (ISSUE 8): stats()/model()/trend() used to return
// references/pointers into mutex-guarded state that the caller read
// *after* the guard released — a data race with any concurrent
// evaluate_batch. They now return snapshots; this test hammers all three
// accessors while batches mutate the policy and must run clean under
// TSan.
TEST(KrigingPolicy, AccessorSnapshotsRaceFreeAgainstEvaluateBatch) {
  d::PolicyOptions o = small_fit_options(3);
  o.min_fit_points = 4;
  o.refit_period = 2;  // Frequent refits: model_/trend_ churn constantly.
  d::KrigingPolicy policy(o);
  auto sim = [](const d::Config& c) { return linear_surface(c); };

  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> reads{0};
  std::thread reader([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      // Consume the snapshot fields; mid-batch the counters are folded at
      // different phases, so no cross-field invariant holds — the contract
      // under test is that reading them here is race-free.
      const d::PolicyStats snapshot = policy.stats();
      volatile std::uint64_t sink =
          snapshot.simulated + snapshot.interpolated + snapshot.exact_hits +
          snapshot.total;
      (void)sink;
      const auto model = policy.model();
      if (model) (void)model->gamma(1.0);
      const std::vector<double> trend = policy.trend();
      if (!trend.empty()) (void)trend.front();
      reads.fetch_add(1, std::memory_order_relaxed);
    }
  });

  for (int x = 0; x < 8; ++x) {
    std::vector<d::Config> batch;
    for (int y = 0; y < 6; ++y) batch.push_back({x, y});
    (void)policy.evaluate_batch(batch, sim, nullptr);
  }
  // The batches can finish before the reader thread is first scheduled;
  // hold the door open until it has observed the policy at least once.
  while (reads.load(std::memory_order_relaxed) == 0) std::this_thread::yield();
  stop.store(true, std::memory_order_relaxed);
  reader.join();
  EXPECT_EQ(policy.stats().total, 48u);
}

}  // namespace
