#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "util/csv.hpp"
#include "util/stopwatch.hpp"
#include "util/table.hpp"

namespace {

using ace::util::CsvWriter;
using ace::util::TablePrinter;

TEST(TablePrinter, RejectsEmptyHeaderAndRaggedRows) {
  EXPECT_THROW(TablePrinter({}), std::invalid_argument);
  TablePrinter t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), std::invalid_argument);
  EXPECT_THROW(t.add_row({"1", "2", "3"}), std::invalid_argument);
}

TEST(TablePrinter, AlignsColumns) {
  TablePrinter t({"name", "v"});
  t.add_row({"x", "1.00"});
  t.add_row({"longer-name", "2.50"});
  std::ostringstream ss;
  t.print(ss);
  const std::string out = ss.str();
  EXPECT_NE(out.find("longer-name"), std::string::npos);
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("----"), std::string::npos);
  EXPECT_EQ(t.rows(), 2u);
  EXPECT_EQ(t.columns(), 2u);
}

TEST(Fmt, FormatsDecimalsAndPercent) {
  EXPECT_EQ(ace::util::fmt(3.14159, 2), "3.14");
  EXPECT_EQ(ace::util::fmt(3.0, 0), "3");
  EXPECT_EQ(ace::util::fmt_pct(0.5278, 2), "52.78");
}

TEST(CsvWriter, WritesAndEscapes) {
  const std::string path = testing::TempDir() + "/ace_csv_test.csv";
  {
    CsvWriter csv(path);
    csv.write_row({"a", "b,c", "d\"e"});
    csv.write_row(std::vector<double>{1.5, 2.25}, 2);
    csv.close();
    EXPECT_FALSE(csv.is_open());
  }
  std::ifstream in(path);
  std::string line1, line2;
  std::getline(in, line1);
  std::getline(in, line2);
  EXPECT_EQ(line1, "a,\"b,c\",\"d\"\"e\"");
  EXPECT_EQ(line2, "1.50,2.25");
  std::remove(path.c_str());
}

TEST(CsvWriter, ThrowsOnBadPathAndWriteAfterClose) {
  EXPECT_THROW(CsvWriter("/nonexistent-dir-xyz/file.csv"), std::runtime_error);
  const std::string path = testing::TempDir() + "/ace_csv_test2.csv";
  CsvWriter csv(path);
  csv.close();
  EXPECT_THROW(csv.write_row({"x"}), std::runtime_error);
  std::remove(path.c_str());
}

TEST(Stopwatch, MeasuresElapsedTime) {
  ace::util::Stopwatch w;
  volatile double sink = 0.0;
  for (int i = 0; i < 100000; ++i) sink = sink + 1.0;
  const double s = w.seconds();
  EXPECT_GT(s, 0.0);
  // Unit conversions are consistent (sampled once, so they can't race).
  EXPECT_GE(w.milliseconds(), s * 1e3);
  EXPECT_GE(w.microseconds(), s * 1e6);
  const double before = w.seconds();
  w.restart();
  EXPECT_LE(w.seconds(), before + 1.0);
}

}  // namespace
