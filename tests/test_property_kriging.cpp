// Property-based sweeps over the kriging estimator: invariants that must
// hold for arbitrary support sets, dimensions and variogram models.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <memory>
#include <vector>

#include "kriging/ordinary_kriging.hpp"
#include "kriging/variogram_model.hpp"
#include "util/rng.hpp"

namespace {

namespace k = ace::kriging;

struct Scenario {
  std::size_t dimension;
  std::size_t support_size;
  std::uint64_t seed;
};

std::unique_ptr<k::VariogramModel> model_for(int which) {
  switch (which % 4) {
    case 0: return std::make_unique<k::LinearVariogram>(0.0, 1.0);
    case 1: return std::make_unique<k::SphericalVariogram>(0.0, 2.0, 8.0);
    case 2: return std::make_unique<k::ExponentialVariogram>(0.0, 1.5, 6.0);
    default: return std::make_unique<k::PowerVariogram>(0.0, 1.0, 1.2);
  }
}

/// Distinct random integer-lattice support points plus a query.
struct Instance {
  std::vector<std::vector<double>> points;
  std::vector<double> values;
  std::vector<double> query;
};

Instance make_instance(const Scenario& s) {
  ace::util::Rng rng(s.seed);
  Instance inst;
  while (inst.points.size() < s.support_size) {
    std::vector<double> p(s.dimension);
    for (auto& x : p) x = rng.uniform_int(0, 8);
    if (std::find(inst.points.begin(), inst.points.end(), p) ==
        inst.points.end())
      inst.points.push_back(std::move(p));
  }
  for (std::size_t i = 0; i < s.support_size; ++i)
    inst.values.push_back(rng.uniform(-10.0, 10.0));
  inst.query.resize(s.dimension);
  for (auto& x : inst.query) x = rng.uniform_int(0, 8) + 0.0;
  return inst;
}

class KrigingInvariantTest : public ::testing::TestWithParam<Scenario> {};

TEST_P(KrigingInvariantTest, WeightsSumToOneForAllModels) {
  const auto inst = make_instance(GetParam());
  for (int which = 0; which < 4; ++which) {
    const auto model = model_for(which);
    const auto r = k::krige(inst.points, inst.values, inst.query, *model);
    if (!r) continue;  // Degenerate geometry: fallback is allowed.
    double sum = 0.0;
    for (double w : r->weights) sum += w;
    EXPECT_NEAR(sum, 1.0, 1e-6) << "model " << model->name();
  }
}

TEST_P(KrigingInvariantTest, ExactAtEverySupportPoint) {
  const auto inst = make_instance(GetParam());
  const auto model = model_for(static_cast<int>(GetParam().seed));
  for (std::size_t i = 0; i < inst.points.size(); ++i) {
    const auto r = k::krige(inst.points, inst.values, inst.points[i], *model);
    ASSERT_TRUE(r.has_value());
    if (r->regularized) continue;  // Ridge trades exactness for solvability.
    EXPECT_NEAR(r->estimate, inst.values[i], 1e-6)
        << "support point " << i << " model " << model->name();
  }
}

TEST_P(KrigingInvariantTest, TranslationInvarianceInValues) {
  // Kriging is linear in λ: shifting all values by c shifts the estimate
  // by c.
  const auto inst = make_instance(GetParam());
  const auto model = model_for(1);
  const auto base = k::krige(inst.points, inst.values, inst.query, *model);
  auto shifted = inst.values;
  for (double& v : shifted) v += 100.0;
  const auto moved = k::krige(inst.points, shifted, inst.query, *model);
  if (!base || !moved) GTEST_SKIP();
  EXPECT_NEAR(moved->estimate, base->estimate + 100.0, 1e-5);
}

TEST_P(KrigingInvariantTest, ScaleEquivarianceInValues) {
  const auto inst = make_instance(GetParam());
  const auto model = model_for(2);
  const auto base = k::krige(inst.points, inst.values, inst.query, *model);
  auto scaled = inst.values;
  for (double& v : scaled) v *= -3.0;
  const auto moved = k::krige(inst.points, scaled, inst.query, *model);
  if (!base || !moved) GTEST_SKIP();
  // Weights depend only on geometry; the estimate is Σ w λ, hence scales.
  EXPECT_NEAR(moved->estimate, -3.0 * base->estimate, 1e-5);
}

TEST_P(KrigingInvariantTest, AffineFieldsAreReproducedNearSupport) {
  // For λ(x) = a + b·Σx_i sampled on the lattice, ordinary kriging with a
  // linear variogram reproduces the affine field well inside the hull.
  const auto param = GetParam();
  if (param.support_size < 4) GTEST_SKIP();
  ace::util::Rng rng(param.seed * 31 + 7);
  auto inst = make_instance(param);
  const double a = rng.uniform(-2.0, 2.0);
  const double b = rng.uniform(0.5, 1.5);
  auto affine = [&](const std::vector<double>& p) {
    double s = 0.0;
    for (double x : p) s += x;
    return a + b * s;
  };
  for (std::size_t i = 0; i < inst.points.size(); ++i)
    inst.values[i] = affine(inst.points[i]);
  const k::LinearVariogram model(0.0, 1.0);
  const auto r = k::krige(inst.points, inst.values, inst.query, model);
  if (!r || r->regularized) GTEST_SKIP();
  // 1-D affine reproduction is exact; in higher dimensions under L1
  // geometry it is near-exact within the sampled box.
  const double truth = affine(inst.query);
  const double span = 8.0 * b * static_cast<double>(param.dimension);
  EXPECT_NEAR(r->estimate, truth, 0.15 * span + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, KrigingInvariantTest,
    ::testing::Values(Scenario{1, 2, 11}, Scenario{1, 4, 12},
                      Scenario{1, 6, 13}, Scenario{2, 3, 21},
                      Scenario{2, 5, 22}, Scenario{2, 8, 23},
                      Scenario{3, 4, 31}, Scenario{3, 7, 32},
                      Scenario{5, 6, 51}, Scenario{5, 10, 52},
                      Scenario{10, 5, 101}, Scenario{10, 12, 102},
                      Scenario{23, 8, 231}, Scenario{23, 16, 232}));

}  // namespace
