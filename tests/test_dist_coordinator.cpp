// Coordinator crash-tolerance tests over in-process workers.
//
// Everything here asserts the same invariant from different failure
// angles: whatever the transports do — die, stall, corrupt, vanish — the
// merged GuardedCalls are bit-identical to a single-process reference,
// because that is what keeps the optimizer's decision sequence intact.
#include "dist/coordinator.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <bit>
#include <cstdint>
#include <memory>
#include <stdexcept>
#include <vector>

#include "dist/chaos.hpp"
#include "dist/in_process.hpp"
#include "dse/fault_injection.hpp"

namespace {

namespace dist = ace::dist;
namespace d = ace::dse;
namespace u = ace::util;

double lattice(const d::Config& w) {
  double acc = 0.0;
  for (std::size_t i = 0; i < w.size(); ++i)
    acc += (0.4 + 0.03 * static_cast<double>(i)) * static_cast<double>(w[i]);
  return acc;
}

std::vector<d::Config> workload(int n) {
  std::vector<d::Config> configs;
  for (int i = 0; i < n; ++i) configs.push_back({i % 7, i / 7, 3});
  return configs;
}

/// The single-process reference: exactly what PooledBatchSimulator would
/// produce for the same configs, retry options and simulator.
std::vector<u::GuardedCall> reference(const std::vector<d::Config>& configs,
                                      const u::RetryOptions& retry,
                                      const d::SimulatorFn& simulate) {
  std::vector<u::GuardedCall> calls;
  calls.reserve(configs.size());
  for (const d::Config& config : configs)
    calls.push_back(u::call_with_retry(
        retry, d::ConfigHash{}(config),
        [&simulate, &config] { return simulate(config); }));
  return calls;
}

void expect_bit_identical(const std::vector<u::GuardedCall>& got,
                          const std::vector<u::GuardedCall>& want) {
  ASSERT_EQ(got.size(), want.size());
  for (std::size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(std::bit_cast<std::uint64_t>(got[i].value),
              std::bit_cast<std::uint64_t>(want[i].value))
        << "value diverged at " << i;
    EXPECT_EQ(got[i].fault, want[i].fault) << i;
    EXPECT_EQ(got[i].attempts, want[i].attempts) << i;
    EXPECT_EQ(got[i].faulted_attempts, want[i].faulted_attempts) << i;
    EXPECT_EQ(got[i].timeouts, want[i].timeouts) << i;
    EXPECT_EQ(got[i].message, want[i].message) << i;
  }
}

/// Factory of chaos-wrapped in-process workers; each spawn draws a fresh
/// seed so respawned workers do not fail in lockstep.
dist::Coordinator::TransportFactory chaos_factory(d::SimulatorFn kernel,
                                                  dist::ChaosOptions chaos) {
  auto next = std::make_shared<std::atomic<std::uint64_t>>(0);
  return [kernel = std::move(kernel), chaos,
          next]() -> std::unique_ptr<dist::Transport> {
    dist::ChaosOptions options = chaos;
    options.seed = chaos.seed + 1000 * next->fetch_add(1);
    return std::make_unique<dist::FaultInjectingTransport>(
        std::make_unique<dist::InProcessTransport>(kernel), options);
  };
}

dist::DistOptions small_cluster() {
  dist::DistOptions options;
  options.workers = 3;
  options.lease_ms = std::chrono::milliseconds(500);
  options.handshake_ms = std::chrono::milliseconds(2000);
  options.respawn_budget = 64;
  options.retry.max_attempts = 2;
  return options;
}

TEST(DistCoordinator, HappyPathMatchesLocalBitwise) {
  const auto configs = workload(40);
  const dist::DistOptions options = small_cluster();
  dist::Coordinator coordinator(chaos_factory(lattice, {}), lattice, options);
  const auto got = coordinator.simulate_many(configs);
  expect_bit_identical(got, reference(configs, options.retry, lattice));
  EXPECT_EQ(coordinator.stats().tasks, configs.size());
  EXPECT_EQ(coordinator.stats().dispatches, configs.size());
  EXPECT_EQ(coordinator.stats().worker_deaths, 0u);
  EXPECT_EQ(coordinator.stats().local_fallbacks, 0u);
  EXPECT_FALSE(coordinator.degraded());
  EXPECT_EQ(coordinator.healthy_workers(), options.workers);
}

TEST(DistCoordinator, RandomWorkerKillsRecoverIdentically) {
  const auto configs = workload(60);
  const dist::DistOptions options = small_cluster();
  dist::ChaosOptions chaos;
  chaos.seed = 7;
  chaos.kill_on_send = 0.08;
  chaos.kill_on_recv = 0.08;
  dist::Coordinator coordinator(chaos_factory(lattice, chaos), lattice,
                                options);
  const auto got = coordinator.simulate_many(configs);
  expect_bit_identical(got, reference(configs, options.retry, lattice));
  EXPECT_GT(coordinator.stats().worker_deaths, 0u);
  EXPECT_GT(coordinator.stats().respawns, 0u);
}

TEST(DistCoordinator, GarbageFramesAreRejectedNotMerged) {
  const auto configs = workload(60);
  const dist::DistOptions options = small_cluster();
  dist::ChaosOptions chaos;
  chaos.seed = 11;
  chaos.garbage = 0.15;
  dist::Coordinator coordinator(chaos_factory(lattice, chaos), lattice,
                                options);
  const auto got = coordinator.simulate_many(configs);
  expect_bit_identical(got, reference(configs, options.retry, lattice));
  EXPECT_GT(coordinator.stats().corrupt_frames +
                coordinator.stats().truncated_frames,
            0u);
}

TEST(DistCoordinator, StragglersExpireAndWorkIsStolen) {
  const auto configs = workload(40);
  dist::DistOptions options = small_cluster();
  options.lease_ms = std::chrono::milliseconds(40);
  dist::ChaosOptions chaos;
  chaos.seed = 13;
  chaos.stall = 0.25;
  chaos.stall_hold = std::chrono::milliseconds(250);
  dist::Coordinator coordinator(chaos_factory(lattice, chaos), lattice,
                                options);
  const auto got = coordinator.simulate_many(configs);
  expect_bit_identical(got, reference(configs, options.retry, lattice));
  EXPECT_GT(coordinator.stats().lease_expiries, 0u);
}

TEST(DistCoordinator, PersistentFaultsQuarantineAcrossBatches) {
  // Third coordinate 9 ≠ 3 keeps this distinct from every workload() config.
  const d::Config broken{1, 0, 9};
  d::FaultInjectionOptions faults;
  faults.always_fault = {broken};
  faults.throw_probability = 0.0;  // Only the always_fault list faults.
  const dist::DistOptions options = small_cluster();
  // Worker-side and local simulators must be the same function: build two
  // instances with identical options (their shared counters differ, but
  // always_fault behaviour is a pure function of the config).
  const d::FaultInjectingSimulator worker_sim(lattice, faults);
  const d::FaultInjectingSimulator local_sim(lattice, faults);
  dist::Coordinator coordinator(chaos_factory(worker_sim, {}), local_sim,
                                options);

  std::vector<d::Config> batch = workload(10);
  batch.push_back(broken);
  const auto first = coordinator.simulate_many(batch);
  ASSERT_EQ(first.size(), batch.size());
  EXPECT_FALSE(first.back().ok());
  EXPECT_EQ(coordinator.stats().quarantine_hits, 0u);
  const std::size_t dispatches_after_first = coordinator.stats().dispatches;

  // Same batch again: the broken config must be served from quarantine —
  // identical recorded outcome, zero new dispatches for it.
  const auto second = coordinator.simulate_many(batch);
  expect_bit_identical(second, first);
  EXPECT_EQ(coordinator.stats().quarantine_hits, 1u);
  EXPECT_EQ(coordinator.stats().dispatches - dispatches_after_first,
            batch.size() - 1);
}

TEST(DistCoordinator, SpawnFailureDegradesToLocal) {
  const auto configs = workload(12);
  dist::DistOptions options = small_cluster();
  options.respawn_budget = 2;
  dist::Coordinator::TransportFactory broken_factory =
      []() -> std::unique_ptr<dist::Transport> {
    throw std::runtime_error("no workers today");
  };
  dist::Coordinator coordinator(std::move(broken_factory), lattice, options);
  const auto got = coordinator.simulate_many(configs);
  expect_bit_identical(got, reference(configs, options.retry, lattice));
  EXPECT_TRUE(coordinator.degraded());
  EXPECT_EQ(coordinator.stats().local_fallbacks, configs.size());
  EXPECT_GT(coordinator.stats().spawn_failures, 0u);
  EXPECT_EQ(coordinator.healthy_workers(), 0u);

  // Once degraded, later batches run locally without touching the factory.
  const auto again = coordinator.simulate_many(configs);
  expect_bit_identical(again, got);
}

TEST(DistCoordinator, TotalWorkerLossDegradesGracefully) {
  const auto configs = workload(20);
  dist::DistOptions options = small_cluster();
  options.respawn_budget = 4;
  dist::ChaosOptions chaos;
  chaos.seed = 3;
  chaos.kill_on_send = 1.0;  // Every frame sent kills its worker.
  dist::Coordinator coordinator(chaos_factory(lattice, chaos), lattice,
                                options);
  const auto got = coordinator.simulate_many(configs);
  expect_bit_identical(got, reference(configs, options.retry, lattice));
  EXPECT_TRUE(coordinator.degraded());
  EXPECT_EQ(coordinator.stats().local_fallbacks, configs.size());
}

TEST(DistCoordinator, ZeroWorkersIsDegradedFromTheStart) {
  const auto configs = workload(8);
  dist::DistOptions options = small_cluster();
  options.workers = 0;
  dist::Coordinator coordinator(chaos_factory(lattice, {}), lattice, options);
  const auto got = coordinator.simulate_many(configs);
  expect_bit_identical(got, reference(configs, options.retry, lattice));
  EXPECT_TRUE(coordinator.degraded());
}

}  // namespace
