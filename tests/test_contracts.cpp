// Numerical-contract tests that follow the build's own contract mode
// (ACE_CONTRACTS_ENABLED == !NDEBUG here): library-level contracts fire in
// Debug and are compiled out in Release. The macro-level force-on /
// force-off tests live in contracts_force_on.cpp / contracts_force_off.cpp,
// which pin ACE_CONTRACTS per translation unit so both modes are exercised
// regardless of build type.
#include "util/contract.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <string>

#include "kriging/variogram_model.hpp"
#include "linalg/cholesky.hpp"
#include "linalg/matrix.hpp"
#include "util/retry.hpp"

namespace {

using ace::util::ContractViolation;

TEST(ContractViolation, CarriesKindConditionAndLocation) {
  try {
    ace::util::raise_contract_violation(ContractViolation::Kind::kEnsure,
                                        "x > 0", "some_file.cpp", 42,
                                        "x must be positive");
    FAIL() << "raise_contract_violation returned";
  } catch (const ContractViolation& e) {
    EXPECT_EQ(e.kind(), ContractViolation::Kind::kEnsure);
    EXPECT_STREQ(e.condition(), "x > 0");
    EXPECT_STREQ(e.file(), "some_file.cpp");
    EXPECT_EQ(e.line(), 42);
    const std::string msg = e.what();
    EXPECT_NE(msg.find("[ensure]"), std::string::npos);
    EXPECT_NE(msg.find("some_file.cpp:42"), std::string::npos);
    EXPECT_NE(msg.find("x > 0"), std::string::npos);
    EXPECT_NE(msg.find("x must be positive"), std::string::npos);
  }
}

TEST(ContractViolation, IsAnInvalidArgument) {
  // Existing call sites catch std::invalid_argument for bad-input errors;
  // contracts must remain visible through that lens.
  EXPECT_THROW(
      ace::util::raise_contract_violation(ContractViolation::Kind::kRequire,
                                          "cond", "f.cpp", 1, ""),
      std::invalid_argument);
}

TEST(ContractViolation, KindNames) {
  EXPECT_STREQ(ace::util::to_string(ContractViolation::Kind::kRequire),
               "require");
  EXPECT_STREQ(ace::util::to_string(ContractViolation::Kind::kEnsure),
               "ensure");
  EXPECT_STREQ(ace::util::to_string(ContractViolation::Kind::kInvariant),
               "invariant");
}

// --- library-level contracts (active iff the library was built Debug) ----

TEST(LibraryContracts, AsymmetricCholeskyInput) {
  ace::linalg::Matrix a(2, 2);
  a(0, 0) = 4.0;
  a(0, 1) = 1.0;
  a(1, 0) = 3.0;  // != a(0,1): not symmetric.
  a(1, 1) = 5.0;
#if ACE_CONTRACTS_ENABLED
  EXPECT_THROW(ace::linalg::CholeskyDecomposition{a}, ContractViolation);
#else
  // Release: the symmetry precondition is compiled out and the lower
  // triangle factors normally.
  EXPECT_NO_THROW(ace::linalg::CholeskyDecomposition{a});
#endif
}

TEST(LibraryContracts, NegativeSillVariogram) {
#if ACE_CONTRACTS_ENABLED
  EXPECT_THROW(ace::kriging::SphericalVariogram(0.0, -1.0, 2.0),
               ContractViolation);
#else
  EXPECT_NO_THROW(ace::kriging::SphericalVariogram(0.0, -1.0, 2.0));
#endif
}

TEST(LibraryContracts, SymmetricNonSpdStillUsesFailedFlag) {
  // Data-dependent non-SPD-ness (a symmetric but indefinite matrix) is an
  // environmental condition, not a contract: the decomposition must keep
  // reporting it through failed() in every build mode.
  ace::linalg::Matrix a(2, 2);
  a(0, 0) = 1.0;
  a(0, 1) = 2.0;
  a(1, 0) = 2.0;
  a(1, 1) = 1.0;
  const ace::linalg::CholeskyDecomposition chol(a);
  EXPECT_TRUE(chol.failed());
}

// --- retry-guard classification ------------------------------------------

TEST(RetryGuard, ContractViolationIsNeverRetried) {
  ace::util::RetryOptions options;
  options.max_attempts = 5;
  std::size_t calls = 0;
  const ace::util::GuardedCall result =
      ace::util::call_with_retry(options, /*task_key=*/1, [&]() -> double {
        ++calls;
        ace::util::raise_contract_violation(ContractViolation::Kind::kRequire,
                                            "always false", "sim.cpp", 7,
                                            "deterministic bug");
      });
  // A tripped contract is deterministic: one attempt, no retries, typed
  // fault classification.
  EXPECT_EQ(calls, 1u);
  EXPECT_EQ(result.attempts, 1u);
  EXPECT_EQ(result.faulted_attempts, 1u);
  EXPECT_EQ(result.fault, ace::util::CallFault::kContractViolation);
  EXPECT_NE(result.message.find("deterministic bug"), std::string::npos);
  EXPECT_STREQ(ace::util::to_string(result.fault), "contract-violation");
}

TEST(RetryGuard, OrdinaryExceptionStillRetries) {
  ace::util::RetryOptions options;
  options.max_attempts = 3;
  std::size_t calls = 0;
  const ace::util::GuardedCall result =
      ace::util::call_with_retry(options, /*task_key=*/2, [&]() -> double {
        ++calls;
        throw std::runtime_error("transient");
      });
  EXPECT_EQ(calls, 3u);
  EXPECT_EQ(result.fault, ace::util::CallFault::kThrew);
}

}  // namespace
