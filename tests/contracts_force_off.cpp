// Compiled with -DACE_CONTRACTS=0 (see tests/CMakeLists.txt): the contract
// macros must expand to nothing in this translation unit — false conditions
// succeed silently and the condition expression is never even evaluated,
// which is the zero-release-overhead guarantee.
#include "util/contract.hpp"

#include <gtest/gtest.h>

static_assert(ACE_CONTRACTS_ENABLED == 0,
              "this TU must be compiled with contracts forced off");

namespace {

TEST(ContractsForceOff, FalseConditionsSucceedSilently) {
  EXPECT_NO_THROW(ACE_REQUIRE(false));
  EXPECT_NO_THROW(ACE_ENSURE(false, "never seen"));
  EXPECT_NO_THROW(ACE_INVARIANT(1 == 2));
}

TEST(ContractsForceOff, ConditionIsNotEvaluated) {
  int evaluations = 0;
  const auto count = [&] {
    ++evaluations;
    return false;
  };
  ACE_REQUIRE(count());
  ACE_ENSURE(count(), "detail");
  ACE_INVARIANT(count());
  EXPECT_EQ(evaluations, 0);
}

}  // namespace
