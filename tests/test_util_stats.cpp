#include "util/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>
#include <vector>

namespace {

using ace::util::RunningStats;

TEST(RunningStats, EmptyAccumulator) {
  RunningStats s;
  EXPECT_TRUE(s.empty());
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_THROW((void)s.min(), std::logic_error);
  EXPECT_THROW((void)s.max(), std::logic_error);
}

TEST(RunningStats, SingleSample) {
  RunningStats s;
  s.add(3.5);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_DOUBLE_EQ(s.mean(), 3.5);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 3.5);
  EXPECT_DOUBLE_EQ(s.max(), 3.5);
}

TEST(RunningStats, MatchesClosedForm) {
  RunningStats s;
  const std::vector<double> xs = {1.0, 2.0, 3.0, 4.0, 5.0};
  for (double x : xs) s.add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 3.0);
  EXPECT_DOUBLE_EQ(s.variance(), 2.5);  // Unbiased sample variance.
  EXPECT_DOUBLE_EQ(s.stddev(), std::sqrt(2.5));
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 5.0);
  EXPECT_DOUBLE_EQ(s.sum(), 15.0);
}

TEST(RunningStats, MergeEqualsSequential) {
  RunningStats a, b, all;
  for (int i = 0; i < 50; ++i) {
    const double x = 0.37 * i - 3.0;
    (i % 2 == 0 ? a : b).add(x);
    all.add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-12);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-10);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(RunningStats, MergeWithEmptySides) {
  RunningStats a, empty;
  a.add(1.0);
  a.add(2.0);
  RunningStats a_copy = a;
  a.merge(empty);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_DOUBLE_EQ(a.mean(), a_copy.mean());
  empty.merge(a);
  EXPECT_EQ(empty.count(), 2u);
  EXPECT_DOUBLE_EQ(empty.mean(), 1.5);
}

TEST(RunningStats, NumericallyStableForLargeOffsets) {
  RunningStats s;
  for (int i = 0; i < 1000; ++i) s.add(1e9 + (i % 2 == 0 ? 0.5 : -0.5));
  EXPECT_NEAR(s.mean(), 1e9, 1e-3);
  EXPECT_NEAR(s.variance(), 0.25 * 1000.0 / 999.0, 1e-6);
}

TEST(BatchStats, MeanVarianceMinMax) {
  const std::vector<double> xs = {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  EXPECT_DOUBLE_EQ(ace::util::mean(xs), 5.0);
  EXPECT_NEAR(ace::util::variance(xs), 32.0 / 7.0, 1e-12);
  EXPECT_DOUBLE_EQ(ace::util::min_of(xs), 2.0);
  EXPECT_DOUBLE_EQ(ace::util::max_of(xs), 9.0);
  EXPECT_THROW((void)ace::util::min_of({}), std::invalid_argument);
  EXPECT_THROW((void)ace::util::max_of({}), std::invalid_argument);
}

TEST(Quantile, InterpolatesBetweenOrderStatistics) {
  const std::vector<double> xs = {10.0, 20.0, 30.0, 40.0};
  EXPECT_DOUBLE_EQ(ace::util::quantile(xs, 0.0), 10.0);
  EXPECT_DOUBLE_EQ(ace::util::quantile(xs, 1.0), 40.0);
  EXPECT_DOUBLE_EQ(ace::util::quantile(xs, 0.5), 25.0);
  EXPECT_DOUBLE_EQ(ace::util::median(xs), 25.0);
}

TEST(Quantile, RejectsBadInput) {
  EXPECT_THROW((void)ace::util::quantile({}, 0.5), std::invalid_argument);
  EXPECT_THROW((void)ace::util::quantile({1.0}, -0.1), std::invalid_argument);
  EXPECT_THROW((void)ace::util::quantile({1.0}, 1.1), std::invalid_argument);
}

TEST(Pearson, PerfectCorrelationAndErrors) {
  const std::vector<double> xs = {1.0, 2.0, 3.0};
  const std::vector<double> up = {2.0, 4.0, 6.0};
  const std::vector<double> down = {6.0, 4.0, 2.0};
  EXPECT_NEAR(ace::util::pearson(xs, up), 1.0, 1e-12);
  EXPECT_NEAR(ace::util::pearson(xs, down), -1.0, 1e-12);
  EXPECT_THROW((void)ace::util::pearson(xs, {1.0}), std::invalid_argument);
  EXPECT_THROW((void)ace::util::pearson({1.0}, {1.0}), std::invalid_argument);
  EXPECT_THROW((void)ace::util::pearson(xs, {1.0, 1.0, 1.0}),
               std::invalid_argument);
}

}  // namespace
