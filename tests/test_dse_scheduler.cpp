#include "dse/scheduler.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "util/rng.hpp"

namespace {

namespace d = ace::dse;

TEST(MaximinOrder, TrivialBatchesPassThrough) {
  EXPECT_TRUE(d::maximin_order({}).empty());
  const std::vector<d::Config> one = {{3, 4}};
  EXPECT_EQ(d::maximin_order(one), one);
  const std::vector<d::Config> two = {{0, 0}, {5, 5}};
  EXPECT_EQ(d::maximin_order(two), two);
}

TEST(MaximinOrder, IsAPermutation) {
  ace::util::Rng rng(90);
  std::vector<d::Config> batch;
  for (int i = 0; i < 30; ++i)
    batch.push_back({rng.uniform_int(0, 10), rng.uniform_int(0, 10),
                     rng.uniform_int(0, 10)});
  const auto ordered = d::maximin_order(batch);
  ASSERT_EQ(ordered.size(), batch.size());
  auto sorted_a = batch;
  auto sorted_b = ordered;
  std::sort(sorted_a.begin(), sorted_a.end());
  std::sort(sorted_b.begin(), sorted_b.end());
  EXPECT_EQ(sorted_a, sorted_b);
}

TEST(MaximinOrder, StartsCentralThenReachesExtremes) {
  // A 1-D line: medoid is the middle; the second pick is an endpoint.
  std::vector<d::Config> batch;
  for (int x = 0; x <= 10; ++x) batch.push_back({x});
  const auto ordered = d::maximin_order(batch);
  EXPECT_EQ(ordered[0], (d::Config{5}));
  EXPECT_TRUE(ordered[1] == d::Config{0} || ordered[1] == d::Config{10});
  // Both endpoints appear among the first three picks.
  const std::set<d::Config> head(ordered.begin(), ordered.begin() + 3);
  EXPECT_TRUE(head.count({0}) == 1);
  EXPECT_TRUE(head.count({10}) == 1);
}

TEST(MaximinOrder, EarlyPrefixIsSpread) {
  // On a dense 2-D grid, the minimum pairwise distance within the first
  // five scheduled points must exceed that of the first five in raster
  // order.
  std::vector<d::Config> batch;
  for (int x = 0; x < 6; ++x)
    for (int y = 0; y < 6; ++y) batch.push_back({x, y});
  const auto ordered = d::maximin_order(batch);
  auto min_pairwise = [](const std::vector<d::Config>& v, std::size_t k) {
    int best = 1 << 20;
    for (std::size_t i = 0; i < k; ++i)
      for (std::size_t j = i + 1; j < k; ++j)
        best = std::min(best, d::l1_distance(v[i], v[j]));
    return best;
  };
  EXPECT_GT(min_pairwise(ordered, 5), min_pairwise(batch, 5));
}

TEST(EvaluateBatch, MaximinOrderingInterpolatesMore) {
  // A dense cloud evaluated through identical policies: the maximin
  // ordering must interpolate at least as many configurations as the
  // raster ordering (it front-loads the spread-out simulations).
  std::vector<d::Config> batch;
  for (int x = 0; x < 7; ++x)
    for (int y = 0; y < 7; ++y) batch.push_back({x, y});
  auto surface = [](const d::Config& c) {
    return 2.0 * c[0] + 3.0 * c[1];
  };
  d::PolicyOptions options;
  options.distance = 3;
  options.min_fit_points = 8;

  d::KrigingPolicy raster(options);
  const std::size_t raster_count = d::evaluate_batch(raster, surface, batch);

  d::KrigingPolicy maximin(options);
  const std::size_t maximin_count =
      d::evaluate_batch(maximin, surface, d::maximin_order(batch));

  EXPECT_GE(maximin_count, raster_count);
  EXPECT_GT(maximin_count, batch.size() / 2);
}

}  // namespace
