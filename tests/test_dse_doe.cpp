#include "dse/doe.hpp"

#include <gtest/gtest.h>

#include <set>
#include <stdexcept>

namespace {

namespace d = ace::dse;

TEST(LatinHypercube, Validation) {
  ace::util::Rng rng(1);
  const d::Lattice lat(3, 2, 16);
  EXPECT_THROW((void)d::latin_hypercube_sample(lat, 0, rng),
               std::invalid_argument);
}

TEST(LatinHypercube, PointsAreDistinctAndInRange) {
  ace::util::Rng rng(2);
  const d::Lattice lat(4, 2, 16);
  const auto design = d::latin_hypercube_sample(lat, 10, rng);
  EXPECT_EQ(design.size(), 10u);
  std::set<d::Config> unique(design.begin(), design.end());
  EXPECT_EQ(unique.size(), design.size());
  for (const auto& c : design) EXPECT_TRUE(lat.contains(c));
}

TEST(LatinHypercube, StratifiesEachDimension) {
  // With count == lattice span, every value of each dimension appears
  // exactly once (classic LHS property).
  ace::util::Rng rng(3);
  const d::Lattice lat(2, 0, 9);
  const auto design = d::latin_hypercube_sample(lat, 10, rng);
  ASSERT_EQ(design.size(), 10u);
  for (std::size_t dim = 0; dim < 2; ++dim) {
    std::set<int> values;
    for (const auto& c : design) values.insert(c[dim]);
    EXPECT_EQ(values.size(), 10u) << "dimension " << dim;
  }
}

TEST(LatinHypercube, Deterministic) {
  ace::util::Rng a(4), b(4);
  const d::Lattice lat(3, 2, 12);
  EXPECT_EQ(d::latin_hypercube_sample(lat, 8, a),
            d::latin_hypercube_sample(lat, 8, b));
}

TEST(CornerPlusRandom, IncludesBothCorners) {
  ace::util::Rng rng(5);
  const d::Lattice lat(3, 2, 16);
  const auto design = d::corner_plus_random_sample(lat, 8, rng);
  EXPECT_GE(design.size(), 2u);
  EXPECT_EQ(design[0], lat.uniform(2));
  EXPECT_EQ(design[1], lat.uniform(16));
  std::set<d::Config> unique(design.begin(), design.end());
  EXPECT_EQ(unique.size(), design.size());
}

TEST(CornerPlusRandom, HandlesTinyLattices) {
  ace::util::Rng rng(6);
  const d::Lattice lat(2, 5, 5);  // Single point.
  const auto design = d::corner_plus_random_sample(lat, 4, rng);
  EXPECT_EQ(design.size(), 1u);
  EXPECT_EQ(design[0], (d::Config{5, 5}));
}

TEST(WarmStart, SeedsThePolicyStore) {
  ace::util::Rng rng(7);
  const d::Lattice lat(2, 0, 10);
  const auto design = d::latin_hypercube_sample(lat, 8, rng);

  d::PolicyOptions options;
  options.distance = 2;
  options.min_fit_points = 20;  // Keep the warm start fully simulated.
  d::KrigingPolicy policy(options);
  std::size_t calls = 0;
  const std::size_t stored = d::warm_start(
      policy,
      [&](const d::Config& c) {
        ++calls;
        return static_cast<double>(c[0] + c[1]);
      },
      design);
  EXPECT_EQ(stored, policy.store().size());
  EXPECT_GE(calls, stored);
  EXPECT_GT(stored, 0u);
}

TEST(WarmStart, RaisesEarlyInterpolationRate) {
  // Dense trajectory around the lattice centre: with a warm-started store
  // the very first queries can already be interpolated.
  ace::util::Rng rng(8);
  const d::Lattice lat(2, 0, 8);
  auto surface = [](const d::Config& c) {
    return 2.0 * c[0] + 3.0 * c[1];
  };

  d::PolicyOptions options;
  options.distance = 4;
  options.min_fit_points = 6;

  d::KrigingPolicy cold(options);
  d::KrigingPolicy warm(options);
  const auto design = d::latin_hypercube_sample(lat, 12, rng);
  d::warm_start(warm, surface, design);

  std::size_t cold_interp = 0, warm_interp = 0;
  for (int x = 3; x <= 5; ++x)
    for (int y = 3; y <= 5; ++y) {
      if (cold.evaluate({x, y}, surface).interpolated) ++cold_interp;
      if (warm.evaluate({x, y}, surface).interpolated) ++warm_interp;
    }
  EXPECT_GE(warm_interp, cold_interp);
  EXPECT_GT(warm_interp, 0u);
}

}  // namespace
