// Randomized invariant sweep over the simulate-or-interpolate policy:
// for arbitrary smooth surfaces, dimensionalities and policy knobs, the
// bookkeeping identities and the paper's structural rules must hold.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "dse/kriging_policy.hpp"
#include "util/rng.hpp"

namespace {

namespace d = ace::dse;

struct Scenario {
  std::size_t dimensions;
  int distance;
  std::size_t nn_min;
  std::uint64_t seed;
};

class PolicyInvariantTest : public ::testing::TestWithParam<Scenario> {};

TEST_P(PolicyInvariantTest, BookkeepingAndStructuralRulesHold) {
  const auto param = GetParam();
  ace::util::Rng rng(param.seed);

  // Random smooth separable surface.
  std::vector<double> slope(param.dimensions);
  for (auto& s : slope) s = rng.uniform(1.0, 8.0);
  auto surface = [&](const d::Config& c) {
    double acc = 0.0;
    for (std::size_t i = 0; i < c.size(); ++i)
      acc += slope[i] * std::sqrt(static_cast<double>(c[i]) + 1.0);
    return acc;
  };

  d::PolicyOptions options;
  options.distance = param.distance;
  options.nn_min = param.nn_min;
  options.min_fit_points = 8;
  d::KrigingPolicy policy(options);

  std::size_t simulator_calls = 0;
  auto counted = [&](const d::Config& c) {
    ++simulator_calls;
    return surface(c);
  };

  // Random-walk evaluation pattern (mimics an optimizer's locality).
  d::Config current(param.dimensions, 8);
  for (int step = 0; step < 120; ++step) {
    const auto outcome = policy.evaluate(current, counted);

    // Invariant: interpolation never happens below the neighbour gate.
    if (outcome.interpolated) EXPECT_GT(outcome.neighbors, param.nn_min);

    // Invariant: an exact store hit is never also an interpolation, and
    // it reproduces the simulated surface value exactly.
    if (outcome.cached) {
      EXPECT_FALSE(outcome.interpolated);
      EXPECT_DOUBLE_EQ(outcome.value, surface(current));
    }

    // Invariant: value is finite.
    EXPECT_TRUE(std::isfinite(outcome.value));

    auto& coord = current[rng.index(param.dimensions)];
    coord = std::clamp(coord + (rng.bernoulli(0.5) ? 1 : -1), 2, 16);
  }

  const auto& stats = policy.stats();
  // Identity: every evaluation is simulated, interpolated, or an exact
  // store hit (the random walk does revisit configurations).
  EXPECT_EQ(stats.total,
            stats.simulated + stats.interpolated + stats.exact_hits);
  EXPECT_EQ(stats.total, 120u);
  // Identity: the store holds exactly the simulated configurations.
  EXPECT_EQ(policy.store().size(), stats.simulated);
  // Identity: the simulator ran exactly once per simulated entry.
  EXPECT_EQ(simulator_calls, stats.simulated);
  // Every stored value equals the surface at its configuration (no
  // interpolated value ever leaks into the support set).
  for (std::size_t i = 0; i < policy.store().size(); ++i)
    EXPECT_DOUBLE_EQ(policy.store().value(i),
                     surface(policy.store().config(i)));
}

TEST_P(PolicyInvariantTest, DeterministicAcrossIdenticalRuns) {
  const auto param = GetParam();
  auto run = [&]() {
    ace::util::Rng rng(param.seed);
    d::PolicyOptions options;
    options.distance = param.distance;
    options.nn_min = param.nn_min;
    options.min_fit_points = 8;
    d::KrigingPolicy policy(options);
    auto surface = [](const d::Config& c) {
      double acc = 0.0;
      for (int v : c) acc += 3.0 * v;
      return acc;
    };
    std::vector<double> values;
    d::Config current(param.dimensions, 8);
    for (int step = 0; step < 60; ++step) {
      values.push_back(policy.evaluate(current, surface).value);
      auto& coord = current[rng.index(param.dimensions)];
      coord = std::clamp(coord + (rng.bernoulli(0.5) ? 1 : -1), 2, 16);
    }
    return values;
  };
  EXPECT_EQ(run(), run());
}

INSTANTIATE_TEST_SUITE_P(
    RandomWalks, PolicyInvariantTest,
    ::testing::Values(Scenario{2, 2, 1, 1001}, Scenario{2, 4, 1, 1002},
                      Scenario{3, 3, 1, 1003}, Scenario{3, 3, 2, 1004},
                      Scenario{5, 2, 1, 1005}, Scenario{5, 4, 2, 1006},
                      Scenario{8, 3, 1, 1007}, Scenario{10, 2, 1, 1008},
                      Scenario{10, 5, 3, 1009}, Scenario{23, 3, 1, 1010}));

}  // namespace
