// Factorization-backed leave-one-out cross-validation (ISSUE 10): the
// property at stake is that KrigingSystem::loo_residuals() — Dubrule's
// identity against the one existing factorization, O(n²) per residual —
// matches n scratch LOO refits within 1e-10, across all three estimator
// kinds, the ridge-fallback path, coincident-support dedupe, and a
// non-zero noise nugget.
//
// Two independent comparators pin the identity:
//   * a matrix-level scratch solve: assemble the full (shifted) system
//     the way KrigingSystem does, delete row/column i, solve the deleted
//     system with a plain LU — by block inversion the deleted solve
//     yields both the LOO residual and ±(A_ii − bᵀx) = 1/B_ii, i.e. the
//     LOO variance;
//   * real (n−1)-point KrigingSystem refits queried at the held-out
//     point, for the unridged zero-nugget case where the refit's own
//     ladder provably stays at shift 0.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <optional>
#include <vector>

#include "kriging/empirical_variogram.hpp"
#include "kriging/system.hpp"
#include "kriging/variogram_model.hpp"
#include "linalg/lu.hpp"
#include "linalg/matrix.hpp"
#include "linalg/vector.hpp"
#include "util/rng.hpp"

namespace {

namespace k = ace::kriging;
namespace la = ace::linalg;

constexpr double kTol = 1e-10;

std::vector<std::vector<double>> lattice_points(std::size_t dim,
                                                std::size_t n,
                                                std::uint64_t seed) {
  ace::util::Rng rng(seed);
  std::vector<std::vector<double>> pts;
  while (pts.size() < n) {
    std::vector<double> p(dim);
    for (auto& x : p) x = rng.uniform_int(0, 9);
    if (std::find(pts.begin(), pts.end(), p) == pts.end())
      pts.push_back(std::move(p));
  }
  return pts;
}

std::vector<double> random_values(std::size_t n, std::uint64_t seed) {
  ace::util::Rng rng(seed);
  std::vector<double> v(n);
  for (auto& x : v) x = rng.uniform(-10.0, 10.0);
  return v;
}

/// Border width the system uses (test-local mirror of refresh_border;
/// callers keep n >= dim + 2 so a linear drift never demotes).
std::size_t border_width(const k::SystemSpec& spec, std::size_t dim) {
  switch (spec.kind) {
    case k::SystemKind::kOrdinary:
      return 1;
    case k::SystemKind::kSimple:
      return 0;
    case k::SystemKind::kUniversal:
      return spec.drift == k::DriftKind::kLinear ? dim + 1 : 1;
  }
  return 0;
}

double entry_of(const k::SystemSpec& spec, const k::VariogramModel& model,
                double d) {
  if (spec.kind == k::SystemKind::kSimple)
    return std::max(spec.sill - model.gamma(d), 0.0);
  return model.gamma(d);
}

/// The full system matrix exactly as KrigingSystem::assemble lays it out
/// for the all-in-base layout: unique points first, border last, `shift`
/// and the noise nugget on the data diagonal only.
la::Matrix assemble_full(const k::SystemSpec& spec,
                         const k::VariogramModel& model,
                         const std::vector<std::vector<double>>& pts,
                         double shift) {
  const std::size_t n = pts.size();
  const std::size_t dim = pts.front().size();
  const std::size_t border = border_width(spec, dim);
  const std::size_t m = n + border;
  double diagonal = entry_of(spec, model, 0.0);
  if (spec.noise_nugget != 0.0)  // ace-lint: allow(float-equality)
    diagonal += spec.kind == k::SystemKind::kSimple ? spec.noise_nugget
                                                    : -spec.noise_nugget;
  la::Matrix a(m, m);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j)
      a(i, j) = i == j ? diagonal + shift
                       : entry_of(spec, model, k::l1_distance(pts[i], pts[j]));
    for (std::size_t l = 0; l < border; ++l) {
      const double f = l == 0 ? 1.0 : pts[i][l - 1];
      a(i, n + l) = f;
      a(n + l, i) = f;
    }
  }
  return a;
}

/// z̃ in matrix order: (centred) values on data rows, zeros on the border.
la::Vector padded_values(const k::SystemSpec& spec,
                         const std::vector<double>& values, std::size_t m) {
  la::Vector z(m);
  for (std::size_t i = 0; i < values.size(); ++i)
    z[i] = spec.kind == k::SystemKind::kSimple ? values[i] - spec.mean
                                               : values[i];
  return z;
}

struct ScratchLoo {
  std::vector<double> residuals;
  std::vector<double> variances;
};

/// n scratch LOO solves from the deleted systems: drop row/column i of
/// the assembled (shifted) matrix, solve A₋ᵢ·x = A[−i, i] with a plain
/// LU, and read off e_i = z̃_i − xᵀ·z̃₋ᵢ and the block-inverse variance
/// ±(A_ii − bᵀx). This is exactly the system "with point i deleted,
/// predicting at point i" — the O(n³)-per-point computation Dubrule's
/// identity replaces.
ScratchLoo scratch_loo(const k::SystemSpec& spec,
                       const k::VariogramModel& model,
                       const std::vector<std::vector<double>>& pts,
                       const std::vector<double>& values, double shift) {
  const std::size_t n = pts.size();
  const la::Matrix a = assemble_full(spec, model, pts, shift);
  const std::size_t m = a.rows();
  const la::Vector z = padded_values(spec, values, m);
  ScratchLoo out;
  for (std::size_t i = 0; i < n; ++i) {
    la::Matrix deleted(m - 1, m - 1);
    la::Vector b(m - 1);
    for (std::size_t r = 0, dr = 0; r < m; ++r) {
      if (r == i) continue;
      b[dr] = a(r, i);
      for (std::size_t c = 0, dc = 0; c < m; ++c) {
        if (c == i) continue;
        deleted(dr, dc) = a(r, c);
        ++dc;
      }
      ++dr;
    }
    la::LuDecomposition lu(deleted);
    EXPECT_FALSE(lu.singular()) << "deleted system " << i;
    const la::Vector x = lu.solve(b);
    double predicted = 0.0;
    double quad = 0.0;
    for (std::size_t r = 0, dr = 0; r < m; ++r) {
      if (r == i) continue;
      predicted += x[dr] * z[r];
      quad += x[dr] * b[dr];
      ++dr;
    }
    const double raw = a(i, i) - quad;
    out.residuals.push_back(z[i] - predicted);
    out.variances.push_back(
        std::max(spec.kind == k::SystemKind::kSimple ? raw : -raw, 0.0));
  }
  return out;
}

std::vector<k::SystemSpec> all_specs() {
  k::SystemSpec ordinary{k::SystemKind::kOrdinary};
  k::SystemSpec simple{k::SystemKind::kSimple, k::DriftKind::kConstant, 30.0,
                       0.5};
  k::SystemSpec universal{k::SystemKind::kUniversal, k::DriftKind::kLinear};
  return {ordinary, simple, universal};
}

TEST(KrigingLoo, MatchesScratchDeletedSolvesAcrossEstimators) {
  const k::SphericalVariogram model(0.1, 2.0, 8.0);
  for (const auto& spec : all_specs()) {
    for (std::uint64_t seed : {21u, 22u, 23u}) {
      const auto pts = lattice_points(2, 8, seed);
      const auto values = random_values(8, seed + 100);
      k::KrigingSystem sys(spec, pts, values, model);
      const auto report = sys.loo_residuals();
      ASSERT_TRUE(report.has_value());
      const auto scratch =
          scratch_loo(spec, model, pts, values, report->shift);
      ASSERT_EQ(report->residuals.size(), pts.size());
      for (std::size_t i = 0; i < pts.size(); ++i) {
        EXPECT_NEAR(report->residuals[i], scratch.residuals[i], kTol)
            << "estimator " << static_cast<int>(spec.kind) << " point " << i;
        EXPECT_NEAR(report->variances[i], scratch.variances[i], kTol)
            << "estimator " << static_cast<int>(spec.kind) << " point " << i;
      }
    }
  }
}

// Second, fully independent comparator: real (n−1)-point KrigingSystem
// refits. Each refit is built from scratch on the reduced support and
// queried at the held-out point — residual AND kriging variance must
// match the factorization-backed report.
TEST(KrigingLoo, MatchesRealScratchRefitsWhenUnridged) {
  const k::SphericalVariogram model(0.1, 2.0, 8.0);
  for (const auto& spec : all_specs()) {
    const auto pts = lattice_points(2, 8, 31);
    const auto values = random_values(8, 131);
    k::KrigingSystem sys(spec, pts, values, model);
    const auto report = sys.loo_residuals();
    ASSERT_TRUE(report.has_value());
    ASSERT_EQ(report->shift, 0.0);
    ASSERT_FALSE(report->regularized);
    for (std::size_t i = 0; i < pts.size(); ++i) {
      auto sub_pts = pts;
      auto sub_values = values;
      sub_pts.erase(sub_pts.begin() + static_cast<std::ptrdiff_t>(i));
      sub_values.erase(sub_values.begin() + static_cast<std::ptrdiff_t>(i));
      k::KrigingSystem refit(spec, sub_pts, sub_values, model);
      const auto predicted = refit.query(pts[i]);
      ASSERT_TRUE(predicted.has_value());
      ASSERT_FALSE(predicted->regularized);
      EXPECT_NEAR(report->residuals[i], values[i] - predicted->estimate, kTol)
          << "estimator " << static_cast<int>(spec.kind) << " point " << i;
      EXPECT_NEAR(report->variances[i], predicted->variance, kTol)
          << "estimator " << static_cast<int>(spec.kind) << " point " << i;
    }
  }
}

// Ridge path: a near-coincident pair (1e-14 apart, zero-nugget variogram)
// makes the plain matrix numerically singular, so loo_residuals climbs
// the ladder; the identity must then hold against scratch deleted solves
// of the matrix at the very shift the report records. The pair shares one
// value so the regularized system stays consistent and the comparison
// stays at 1e-10 despite the conditioning.
TEST(KrigingLoo, RidgePathMatchesScratchAtTheRecordedShift) {
  const k::SphericalVariogram model(0.0, 2.0, 8.0);
  std::vector<std::vector<double>> pts = {{0.0, 0.0}, {3.0, 1.0}, {6.0, 2.0},
                                          {1.0, 5.0}, {7.0, 6.0}, {4.0, 4.0},
                                          {2.0, 7.0}};
  std::vector<double> values = random_values(pts.size(), 57);
  pts.push_back({2.0 + 1e-14, 7.0});
  values.push_back(values[6]);  // Same value as its near-twin.
  const k::SystemSpec spec{k::SystemKind::kOrdinary};
  k::KrigingSystem sys(spec, pts, values, model);
  const auto report = sys.loo_residuals();
  ASSERT_TRUE(report.has_value());
  EXPECT_TRUE(report->regularized);
  EXPECT_GT(report->shift, 0.0);
  const auto scratch = scratch_loo(spec, model, pts, values, report->shift);
  for (std::size_t i = 0; i < pts.size(); ++i) {
    EXPECT_NEAR(report->residuals[i], scratch.residuals[i], kTol)
        << "point " << i;
    EXPECT_NEAR(report->variances[i], scratch.variances[i], kTol)
        << "point " << i;
  }
}

// Coincident-support dedupe: exact duplicates collapse to zero-weight
// slots, so the LOO report covers the unique support only and matches
// scratch solves over the deduplicated point list.
TEST(KrigingLoo, DedupedSupportMatchesScratchOverUniquePoints) {
  const k::SphericalVariogram model(0.1, 2.0, 8.0);
  const auto unique_pts = lattice_points(2, 6, 41);
  const auto unique_values = random_values(6, 141);
  auto pts = unique_pts;
  auto values = unique_values;
  pts.push_back(unique_pts[1]);  // Exact duplicates of existing support.
  values.push_back(unique_values[1]);
  pts.push_back(unique_pts[4]);
  values.push_back(unique_values[4]);
  for (const auto& spec : all_specs()) {
    k::KrigingSystem sys(spec, pts, values, model);
    ASSERT_EQ(sys.support_size(), pts.size());
    ASSERT_EQ(sys.unique_size(), unique_pts.size());
    const auto report = sys.loo_residuals();
    ASSERT_TRUE(report.has_value());
    ASSERT_EQ(report->residuals.size(), unique_pts.size());
    const auto scratch =
        scratch_loo(spec, model, unique_pts, unique_values, report->shift);
    for (std::size_t i = 0; i < unique_pts.size(); ++i) {
      EXPECT_NEAR(report->residuals[i], scratch.residuals[i], kTol)
          << "estimator " << static_cast<int>(spec.kind) << " point " << i;
      EXPECT_NEAR(report->variances[i], scratch.variances[i], kTol)
          << "estimator " << static_cast<int>(spec.kind) << " point " << i;
    }
  }
}

// Noise nugget: the τ²-shifted diagonal flows through the identity — the
// report matches scratch solves of the nugget-bearing matrix, and the
// LOO variances grow strictly (prediction of a noisy observation).
TEST(KrigingLoo, NuggetMatchesScratchAndInflatesVariance) {
  const k::SphericalVariogram model(0.1, 2.0, 8.0);
  const auto pts = lattice_points(2, 8, 61);
  const auto values = random_values(8, 161);
  for (auto spec : all_specs()) {
    k::KrigingSystem plain(spec, pts, values, model);
    const auto base = plain.loo_residuals();
    ASSERT_TRUE(base.has_value());
    spec.noise_nugget = 0.25;
    k::KrigingSystem noisy(spec, pts, values, model);
    const auto report = noisy.loo_residuals();
    ASSERT_TRUE(report.has_value());
    const auto scratch = scratch_loo(spec, model, pts, values, report->shift);
    double mean_base = 0.0;
    double mean_noisy = 0.0;
    for (std::size_t i = 0; i < pts.size(); ++i) {
      EXPECT_NEAR(report->residuals[i], scratch.residuals[i], kTol)
          << "estimator " << static_cast<int>(spec.kind) << " point " << i;
      EXPECT_NEAR(report->variances[i], scratch.variances[i], kTol)
          << "estimator " << static_cast<int>(spec.kind) << " point " << i;
      mean_base += base->variances[i];
      mean_noisy += report->variances[i];
    }
    EXPECT_GT(mean_noisy, mean_base)
        << "estimator " << static_cast<int>(spec.kind);
  }
}

TEST(KrigingLoo, DegenerateSupportsReturnNullopt) {
  const k::SphericalVariogram model(0.1, 2.0, 8.0);
  k::KrigingSystem single({k::SystemKind::kOrdinary}, {{1.0, 2.0}}, {3.0},
                          model);
  EXPECT_FALSE(single.loo_residuals().has_value());
  // Universal kriging with a linear drift needs dim + 3 unique points for
  // every LOO subset to keep the full system's effective drift.
  k::KrigingSystem small({k::SystemKind::kUniversal, k::DriftKind::kLinear},
                         {{0.0, 0.0}, {1.0, 3.0}, {4.0, 1.0}, {2.0, 2.0}},
                         {1.0, 2.0, 3.0, 4.0}, model);
  EXPECT_FALSE(small.loo_residuals().has_value());
}

}  // namespace
