#include "kriging/universal_kriging.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

#include "kriging/ordinary_kriging.hpp"
#include "kriging/variogram_model.hpp"
#include "util/rng.hpp"

namespace {

namespace k = ace::kriging;

TEST(UniversalKriging, Validation) {
  const k::LinearVariogram model(0.0, 1.0);
  EXPECT_THROW(
      (void)k::krige_with_drift({}, {}, {0.0}, model, k::DriftKind::kLinear),
      std::invalid_argument);
  EXPECT_THROW((void)k::krige_with_drift({{0.0}}, {1.0, 2.0}, {0.0}, model,
                                         k::DriftKind::kLinear),
               std::invalid_argument);
  EXPECT_THROW((void)k::krige_with_drift({{0.0, 0.0}}, {1.0}, {0.0}, model,
                                         k::DriftKind::kLinear),
               std::invalid_argument);
}

TEST(UniversalKriging, ConstantDriftMatchesOrdinaryKriging) {
  const k::SphericalVariogram model(0.1, 2.0, 6.0);
  const std::vector<std::vector<double>> pts = {
      {0.0, 0.0}, {1.0, 2.0}, {3.0, 1.0}, {4.0, 4.0}};
  const std::vector<double> vals = {1.0, 2.0, 0.5, -1.0};
  for (const auto& q : std::vector<std::vector<double>>{
           {2.0, 2.0}, {0.0, 1.0}, {5.0, 5.0}}) {
    const auto ok = k::krige(pts, vals, q, model);
    const auto uk =
        k::krige_with_drift(pts, vals, q, model, k::DriftKind::kConstant);
    ASSERT_TRUE(ok.has_value());
    ASSERT_TRUE(uk.has_value());
    EXPECT_NEAR(ok->estimate, uk->estimate, 1e-9);
    EXPECT_NEAR(ok->variance, uk->variance, 1e-9);
  }
}

TEST(UniversalKriging, LinearDriftReproducesAffineFieldExactly) {
  // λ(x) = 3 + 2x sampled at a few 1-D points: with a linear drift the
  // trend is captured by the basis, so even an extrapolating query is
  // reproduced exactly — ordinary kriging cannot do that.
  const k::LinearVariogram model(0.0, 1.0);
  const std::vector<std::vector<double>> pts = {{0.0}, {1.0}, {2.0}, {4.0}};
  std::vector<double> vals;
  for (const auto& p : pts) vals.push_back(3.0 + 2.0 * p[0]);
  const std::vector<double> query = {8.0};  // Far outside the support.

  const auto uk =
      k::krige_with_drift(pts, vals, query, model, k::DriftKind::kLinear);
  ASSERT_TRUE(uk.has_value());
  EXPECT_NEAR(uk->estimate, 3.0 + 2.0 * 8.0, 1e-6);

  const auto ok = k::krige(pts, vals, query, model);
  ASSERT_TRUE(ok.has_value());
  // Ordinary kriging extrapolates toward the local mean — visibly off.
  EXPECT_GT(std::abs(ok->estimate - 19.0), std::abs(uk->estimate - 19.0));
}

TEST(UniversalKriging, LinearDriftExactInHigherDimensions) {
  const k::ExponentialVariogram model(0.0, 1.0, 4.0);
  const std::vector<std::vector<double>> pts = {
      {0.0, 0.0, 0.0}, {1.0, 0.0, 2.0}, {2.0, 1.0, 0.0}, {0.0, 2.0, 1.0},
      {3.0, 3.0, 3.0}, {1.0, 2.0, 2.0}};
  auto field = [](const std::vector<double>& x) {
    return 1.0 - 2.0 * x[0] + 0.5 * x[1] + 3.0 * x[2];
  };
  std::vector<double> vals;
  for (const auto& p : pts) vals.push_back(field(p));
  const std::vector<double> query = {4.0, 1.0, 5.0};
  const auto uk =
      k::krige_with_drift(pts, vals, query, model, k::DriftKind::kLinear);
  ASSERT_TRUE(uk.has_value());
  EXPECT_NEAR(uk->estimate, field(query), 1e-5);
}

TEST(UniversalKriging, SmallSupportFallsBackToConstantDrift) {
  // 2 points in 3-D cannot identify a linear trend (needs dim + 2 = 5):
  // the call must still succeed via the constant-drift fallback.
  const k::LinearVariogram model(0.0, 1.0);
  const std::vector<std::vector<double>> pts = {{0.0, 0.0, 0.0},
                                                {2.0, 0.0, 0.0}};
  const std::vector<double> vals = {1.0, 5.0};
  const auto uk = k::krige_with_drift(pts, vals, {1.0, 0.0, 0.0}, model,
                                      k::DriftKind::kLinear);
  ASSERT_TRUE(uk.has_value());
  EXPECT_NEAR(uk->estimate, 3.0, 1e-9);  // Midpoint average.
}

TEST(UniversalKriging, ExactAtSupportPoints) {
  const k::LinearVariogram model(0.0, 0.5);
  const std::vector<std::vector<double>> pts = {{0.0}, {2.0}, {5.0}, {7.0}};
  const std::vector<double> vals = {1.0, -2.0, 4.0, 0.0};
  for (std::size_t i = 0; i < pts.size(); ++i) {
    const auto r = k::krige_with_drift(pts, vals, pts[i], model,
                                       k::DriftKind::kLinear);
    ASSERT_TRUE(r.has_value());
    if (r->regularized) continue;
    EXPECT_NEAR(r->estimate, vals[i], 1e-7) << "support point " << i;
  }
}

TEST(UniversalKriging, WeightsSumToOneUnderLinearDrift) {
  // The constant basis row enforces Σw = 1 regardless of drift order.
  const k::SphericalVariogram model(0.0, 1.0, 5.0);
  ace::util::Rng rng(77);
  std::vector<std::vector<double>> pts;
  std::vector<double> vals;
  for (int i = 0; i < 7; ++i) {
    pts.push_back({static_cast<double>(rng.uniform_int(0, 8)),
                   static_cast<double>(rng.uniform_int(0, 8))});
    vals.push_back(rng.uniform(-5.0, 5.0));
  }
  const auto r = k::krige_with_drift(pts, vals, {4.0, 4.0}, model,
                                     k::DriftKind::kLinear);
  if (!r) GTEST_SKIP();  // Degenerate random geometry.
  double sum = 0.0;
  for (double w : r->weights) sum += w;
  EXPECT_NEAR(sum, 1.0, 1e-6);
}

}  // namespace
