#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

#include "approx/adders.hpp"
#include "approx/characterize.hpp"
#include "approx/multipliers.hpp"
#include "util/rng.hpp"

namespace {

namespace ax = ace::approx;

TEST(ExactAdd, WrapsTwoComplement) {
  EXPECT_EQ(ax::exact_add(3, 4, 8), 7);
  EXPECT_EQ(ax::exact_add(127, 1, 8), -128);  // Overflow wraps.
  EXPECT_EQ(ax::exact_add(-128, -1, 8), 127);
  EXPECT_EQ(ax::exact_add(-5, 2, 8), -3);
  EXPECT_THROW((void)ax::exact_add(0, 0, 1), std::invalid_argument);
  EXPECT_THROW((void)ax::exact_add(0, 0, 63), std::invalid_argument);
}

TEST(Adders, ConstructionValidation) {
  EXPECT_THROW(ax::LowerOrAdder(1, 0), std::invalid_argument);
  EXPECT_THROW(ax::LowerOrAdder(8, -1), std::invalid_argument);
  EXPECT_THROW(ax::LowerOrAdder(8, 9), std::invalid_argument);
  EXPECT_THROW(ax::TruncatedAdder(8, 9), std::invalid_argument);
  EXPECT_THROW(ax::CarryCutAdder(8, 9), std::invalid_argument);
}

TEST(Adders, DegreeZeroIsExact) {
  ace::util::Rng rng(80);
  const ax::LowerOrAdder loa(12, 0);
  const ax::TruncatedAdder tra(12, 0);
  const ax::CarryCutAdder cca(12, 0);
  for (int i = 0; i < 500; ++i) {
    const std::int64_t a = rng.uniform_int(-2048, 2047);
    const std::int64_t b = rng.uniform_int(-2048, 2047);
    const std::int64_t exact = ax::exact_add(a, b, 12);
    EXPECT_EQ(loa.add(a, b), exact);
    EXPECT_EQ(tra.add(a, b), exact);
    EXPECT_EQ(cca.add(a, b), exact);
  }
}

TEST(LowerOrAdder, KnownSmallCases) {
  // width 4, degree 2: low 2 bits OR-ed, carry = AND of bit 1.
  const ax::LowerOrAdder loa(4, 2);
  // a = 0b0001, b = 0b0010 -> low OR = 0b11, no carry, high 0 -> 3 (exact).
  EXPECT_EQ(loa.add(1, 2), 3);
  // a = 0b0011, b = 0b0011: low OR = 0b11 (exact sum low = 0b10 carry 1);
  // carry predicted from bit1&bit1 = 1: high = (0+0+1)<<2 = 4; result 7.
  EXPECT_EQ(loa.add(3, 3), 7);  // Exact is 6: LOA error = +1.
  // a = 0b0101, b = 0b0001: low OR = 0b01, no carry; high = 1<<2; result 5.
  EXPECT_EQ(loa.add(5, 1), 5);  // Exact is 6: LOA error = -1.
}

TEST(TruncatedAdder, ZeroesLowBits) {
  const ax::TruncatedAdder tra(8, 3);
  EXPECT_EQ(tra.add(0b00001111, 0b00000111), 0b00001000);
  EXPECT_EQ(tra.add(0b1000, 0b1000), 0b10000);
}

TEST(CarryCutAdder, DropsCrossCarryOnly) {
  const ax::CarryCutAdder cca(8, 4);
  // No carry across bit 4: exact.
  EXPECT_EQ(cca.add(0b0001, 0b0010), 3);
  EXPECT_EQ(cca.add(0b10000, 0b100000), 0b110000);
  // Carry across the cut is dropped: 0b1000 + 0b1000 = 0b10000 exact,
  // but cut at 4 keeps low = 0b0000 and high = 0 -> 0.
  EXPECT_EQ(cca.add(0b1000, 0b1000), 0);
}

/// Property sweep: approximate-adder error metrics are monotone in degree
/// and exactly zero at degree 0.
class AdderDegreeTest : public ::testing::TestWithParam<int> {};

TEST_P(AdderDegreeTest, ErrorGrowsWithDegree) {
  const int width = 8;
  auto exact = [width](std::int64_t a, std::int64_t b) {
    return ax::exact_add(a, b, width);
  };
  double previous_mse = -1.0;
  for (int degree : {0, 2, 4, 6}) {
    const int kind = GetParam();
    ax::BinaryOp approx_op;
    if (kind == 0) {
      approx_op = [adder = ax::LowerOrAdder(width, degree)](
                      std::int64_t a, std::int64_t b) {
        return adder.add(a, b);
      };
    } else if (kind == 1) {
      approx_op = [adder = ax::TruncatedAdder(width, degree)](
                      std::int64_t a, std::int64_t b) {
        return adder.add(a, b);
      };
    } else {
      approx_op = [adder = ax::CarryCutAdder(width, degree)](
                      std::int64_t a, std::int64_t b) {
        return adder.add(a, b);
      };
    }
    const auto profile = ax::characterize_exhaustive(approx_op, exact, width);
    if (degree == 0) {
      EXPECT_EQ(profile.error_rate, 0.0);
      EXPECT_EQ(profile.mean_squared_error, 0.0);
    }
    EXPECT_GE(profile.mean_squared_error, previous_mse);
    previous_mse = profile.mean_squared_error;
  }
}

INSTANTIATE_TEST_SUITE_P(AdderKinds, AdderDegreeTest,
                         ::testing::Values(0, 1, 2));

TEST(TruncatedMultiplier, DegreeZeroExactAndValidation) {
  EXPECT_THROW(ax::TruncatedMultiplier(1, 0), std::invalid_argument);
  EXPECT_THROW(ax::TruncatedMultiplier(8, 17), std::invalid_argument);
  const ax::TruncatedMultiplier exact_mul(8, 0);
  ace::util::Rng rng(81);
  for (int i = 0; i < 500; ++i) {
    const std::int64_t a = rng.uniform_int(-128, 127);
    const std::int64_t b = rng.uniform_int(-128, 127);
    EXPECT_EQ(exact_mul.multiply(a, b), a * b);
  }
}

TEST(TruncatedMultiplier, DropsLowColumns) {
  const ax::TruncatedMultiplier mul(8, 4);
  // 5·7 = 35 = 0b100011 -> low 4 bits dropped -> 32; sign preserved.
  EXPECT_EQ(mul.multiply(5, 7), 32);
  EXPECT_EQ(mul.multiply(-5, 7), -32);
  EXPECT_EQ(mul.multiply(5, -7), -32);
  EXPECT_EQ(mul.multiply(-5, -7), 32);
  EXPECT_EQ(mul.multiply(0, 123), 0);
}

TEST(MitchellMultiplier, PowersOfTwoAreExact) {
  const ax::MitchellMultiplier mul(16, 8);
  EXPECT_EQ(mul.multiply(4, 8), 32);
  EXPECT_EQ(mul.multiply(16, 16), 256);
  EXPECT_EQ(mul.multiply(-4, 8), -32);
  EXPECT_EQ(mul.multiply(0, 99), 0);
}

TEST(MitchellMultiplier, RelativeErrorWithinClassicalBound) {
  // Mitchell's log multiplier underestimates by at most ~11.1%.
  const ax::MitchellMultiplier mul(12, 16);
  ace::util::Rng rng(82);
  for (int i = 0; i < 2000; ++i) {
    const std::int64_t a = rng.uniform_int(1, 2047);
    const std::int64_t b = rng.uniform_int(1, 2047);
    const double exact = static_cast<double>(a * b);
    const double approx_v = static_cast<double>(mul.multiply(a, b));
    const double rel = (exact - approx_v) / exact;
    EXPECT_GE(rel, -0.02);  // Never overestimates beyond rounding.
    EXPECT_LE(rel, 0.115);  // The 1 - (ln 2·e)/... classical bound.
  }
}

TEST(Characterize, ValidationAndExhaustiveCounts) {
  auto identity = [](std::int64_t a, std::int64_t) { return a; };
  EXPECT_THROW(
      (void)ax::characterize_exhaustive(nullptr, identity, 4),
      std::invalid_argument);
  EXPECT_THROW(
      (void)ax::characterize_exhaustive(identity, identity, 13),
      std::invalid_argument);
  const auto profile = ax::characterize_exhaustive(identity, identity, 4);
  EXPECT_EQ(profile.pairs, 256u);
  EXPECT_EQ(profile.error_rate, 0.0);
}

TEST(Characterize, SampledMatchesExhaustiveTrend) {
  auto exact = [](std::int64_t a, std::int64_t b) {
    return ax::exact_add(a, b, 8);
  };
  auto approx_op = [adder = ax::LowerOrAdder(8, 4)](std::int64_t a,
                                                    std::int64_t b) {
    return adder.add(a, b);
  };
  const auto full = ax::characterize_exhaustive(approx_op, exact, 8);
  ace::util::Rng rng(83);
  const auto sampled =
      ax::characterize_sampled(approx_op, exact, 8, 20000, rng);
  EXPECT_NEAR(sampled.error_rate, full.error_rate, 0.05);
  EXPECT_NEAR(sampled.mean_error_distance, full.mean_error_distance,
              0.25 * full.mean_error_distance + 0.1);
  ace::util::Rng rng2(84);
  EXPECT_THROW(
      (void)ax::characterize_sampled(approx_op, exact, 8, 0, rng2),
      std::invalid_argument);
}

}  // namespace
