#include "util/retry.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <cmath>
#include <limits>
#include <stdexcept>
#include <thread>
#include <vector>

namespace {

namespace u = ace::util;

TEST(Retry, CleanCallSucceedsFirstTry) {
  const u::GuardedCall r =
      u::call_with_retry({}, 7, [] { return 42.0; });
  EXPECT_TRUE(r.ok());
  EXPECT_DOUBLE_EQ(r.value, 42.0);
  EXPECT_EQ(r.fault, u::CallFault::kNone);
  EXPECT_EQ(r.attempts, 1u);
  EXPECT_EQ(r.faulted_attempts, 0u);
  EXPECT_EQ(r.timeouts, 0u);
  EXPECT_TRUE(r.message.empty());
}

TEST(Retry, TransientThrowIsRetriedToSuccess) {
  u::RetryOptions options;
  options.max_attempts = 5;
  int calls = 0;
  const u::GuardedCall r = u::call_with_retry(options, 7, [&] {
    if (++calls < 3) throw std::runtime_error("transient");
    return 1.5;
  });
  EXPECT_TRUE(r.ok());
  EXPECT_DOUBLE_EQ(r.value, 1.5);
  EXPECT_EQ(r.attempts, 3u);
  EXPECT_EQ(r.faulted_attempts, 2u);
  // Success clears the stale failure message from earlier attempts.
  EXPECT_TRUE(r.message.empty());
}

TEST(Retry, ExhaustedBudgetReportsThrowWithMessage) {
  u::RetryOptions options;
  options.max_attempts = 3;
  int calls = 0;
  const u::GuardedCall r = u::call_with_retry(options, 7, [&]() -> double {
    ++calls;
    throw std::runtime_error("persistent failure");
  });
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.fault, u::CallFault::kThrew);
  EXPECT_EQ(r.attempts, 3u);
  EXPECT_EQ(r.faulted_attempts, 3u);
  EXPECT_EQ(calls, 3);
  EXPECT_EQ(r.message, "persistent failure");
}

TEST(Retry, NonStdExceptionIsCapturedToo) {
  const u::GuardedCall r =
      u::call_with_retry({}, 0, []() -> double { throw 17; });
  EXPECT_EQ(r.fault, u::CallFault::kThrew);
  EXPECT_EQ(r.message, "non-standard exception");
}

TEST(Retry, NonFiniteResultsAreFaults) {
  for (const double bad : {std::numeric_limits<double>::quiet_NaN(),
                           std::numeric_limits<double>::infinity(),
                           -std::numeric_limits<double>::infinity()}) {
    const u::GuardedCall r = u::call_with_retry({}, 3, [bad] { return bad; });
    EXPECT_FALSE(r.ok());
    EXPECT_EQ(r.fault, u::CallFault::kNonFinite);
    EXPECT_EQ(r.faulted_attempts, 1u);
  }
}

TEST(Retry, NonFiniteThenCleanRecovers) {
  u::RetryOptions options;
  options.max_attempts = 2;
  int calls = 0;
  const u::GuardedCall r = u::call_with_retry(options, 3, [&] {
    return ++calls == 1 ? std::numeric_limits<double>::quiet_NaN() : 2.5;
  });
  EXPECT_TRUE(r.ok());
  EXPECT_DOUBLE_EQ(r.value, 2.5);
  EXPECT_EQ(r.faulted_attempts, 1u);
}

TEST(Retry, DeadlineClassifiesSlowCallAndDiscardsValue) {
  u::RetryOptions options;
  options.max_attempts = 2;
  options.deadline_ms = 0.5;
  const u::GuardedCall r = u::call_with_retry(options, 11, [] {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    return 99.0;  // Computed, but over budget: must be discarded.
  });
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.fault, u::CallFault::kOverDeadline);
  EXPECT_EQ(r.timeouts, 2u);
  EXPECT_EQ(r.attempts, 2u);
  EXPECT_DOUBLE_EQ(r.value, 0.0);
}

TEST(Retry, DeadlineZeroDisablesWatchdog) {
  const u::GuardedCall r = u::call_with_retry({}, 11, [] {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
    return 7.0;
  });
  EXPECT_TRUE(r.ok());
  EXPECT_DOUBLE_EQ(r.value, 7.0);
}

TEST(Retry, BackoffIsDeterministicBoundedAndGrows) {
  u::RetryOptions options;
  options.base_backoff_ms = 1.0;
  options.backoff_multiplier = 2.0;
  options.max_backoff_ms = 16.0;
  options.jitter_fraction = 0.25;

  for (const std::uint64_t key : {0ull, 42ull, 0xdeadbeefull}) {
    for (std::size_t k = 0; k < 10; ++k) {
      const double d1 = u::backoff_delay_ms(options, key, k);
      const double d2 = u::backoff_delay_ms(options, key, k);
      EXPECT_DOUBLE_EQ(d1, d2);  // Pure function of (options, key, k).
      const double nominal = std::min(1.0 * std::pow(2.0, static_cast<double>(k)),
                                      options.max_backoff_ms);
      EXPECT_GE(d1, nominal);
      EXPECT_LE(d1, nominal * (1.0 + options.jitter_fraction));
    }
  }
  // Different task keys draw different jitter (with overwhelming
  // probability for these particular keys).
  EXPECT_NE(u::backoff_delay_ms(options, 1, 0),
            u::backoff_delay_ms(options, 2, 0));
  // Zero base means no sleeping at all, jitter included.
  u::RetryOptions immediate;
  immediate.base_backoff_ms = 0.0;
  EXPECT_DOUBLE_EQ(u::backoff_delay_ms(immediate, 5, 3), 0.0);
}

// The watchdog is post-hoc (a C++ callable cannot be pre-empted), so the
// interesting deadline case is the *final* attempt stalling after earlier
// attempts failed fast: the stall must still be classified kOverDeadline
// with exact attempt accounting, and the computed value discarded.
TEST(Retry, WatchdogCoversStalledFinalAttempt) {
  u::RetryOptions options;
  options.max_attempts = 3;
  options.deadline_ms = 1.0;
  std::size_t calls = 0;
  const u::GuardedCall r = u::call_with_retry(options, 17, [&calls] {
    if (++calls < 3) throw std::runtime_error("fast transient");
    std::this_thread::sleep_for(std::chrono::milliseconds(8));
    return 123.0;  // Stalled final attempt: computed but over budget.
  });
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.fault, u::CallFault::kOverDeadline);
  EXPECT_EQ(r.attempts, 3u);
  EXPECT_EQ(r.faulted_attempts, 3u);
  EXPECT_EQ(r.timeouts, 1u);  // Only the stalled attempt, not the throws.
  EXPECT_DOUBLE_EQ(r.value, 0.0);
}

// The whole backoff schedule must be a pure function of the jitter seed:
// a fixed seed reproduces every delay bit-for-bit, a different seed moves
// them. This is what makes the coordinator's re-dispatch schedule (which
// reuses backoff_delay_ms) replayable.
TEST(Retry, JitterScheduleIsDeterministicPerSeed) {
  u::RetryOptions options;
  options.base_backoff_ms = 2.0;
  options.jitter_fraction = 0.5;
  options.jitter_seed = 0xfeedull;

  std::vector<double> schedule;
  for (std::size_t k = 0; k < 6; ++k)
    schedule.push_back(u::backoff_delay_ms(options, 99, k));
  for (std::size_t k = 0; k < 6; ++k)
    EXPECT_DOUBLE_EQ(schedule[k], u::backoff_delay_ms(options, 99, k));

  u::RetryOptions reseeded = options;
  reseeded.jitter_seed = 0xbeefull;
  bool any_differs = false;
  for (std::size_t k = 0; k < 6; ++k)
    any_differs |= u::backoff_delay_ms(reseeded, 99, k) != schedule[k];
  EXPECT_TRUE(any_differs);
}

TEST(Retry, FaultNamesAreStable) {
  EXPECT_STREQ(u::to_string(u::CallFault::kNone), "none");
  EXPECT_STREQ(u::to_string(u::CallFault::kThrew), "threw");
  EXPECT_STREQ(u::to_string(u::CallFault::kNonFinite), "non-finite");
  EXPECT_STREQ(u::to_string(u::CallFault::kOverDeadline), "over-deadline");
}

}  // namespace
