// Additional integration coverage for the experiment harness: sensitivity
// (quality-rate) pipelines, divergence on the budgeting optimizer, and
// policy knob plumbing through run_table1.
#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "core/table1.hpp"
#include "kriging/universal_kriging.hpp"

namespace {

namespace c = ace::core;
namespace d = ace::dse;

/// A tiny analytic sensitivity benchmark (no heavy substrate): quality
/// 1 − Σ k_i·2^-e_i over 3 sources, like the CNN benchmark in miniature.
c::ApplicationBenchmark tiny_sensitivity() {
  c::ApplicationBenchmark bench;
  bench.name = "toy-sens";
  bench.nv = 3;
  bench.metric = d::MetricKind::kQualityRate;
  bench.optimizer = c::OptimizerKind::kSensitivity;
  bench.sensitivity.lambda_min = 0.9;
  bench.sensitivity.nv = 3;
  bench.sensitivity.level_min = 0;
  bench.sensitivity.level_max = 12;
  bench.simulate = [](const d::Config& levels) {
    const double k[3] = {1.0, 0.5, 0.25};
    double damage = 0.0;
    for (std::size_t i = 0; i < 3; ++i)
      damage += k[i] * std::ldexp(1.0, -levels[i]);
    return 1.0 - damage;
  };
  return bench;
}

TEST(Table1Sensitivity, PipelineRunsWithQualityRateMetric) {
  const auto bench = tiny_sensitivity();
  const auto result = c::run_table1(bench, {2, 4});
  EXPECT_EQ(result.metric, d::MetricKind::kQualityRate);
  EXPECT_GT(result.trajectory.size(), 10u);
  EXPECT_GE(result.exact_lambda, 0.9);
  for (const auto& row : result.rows) {
    EXPECT_GE(row.p_percent, 0.0);
    EXPECT_GE(row.eps_max, row.eps_mean);
  }
}

TEST(Table1Sensitivity, PrintUsesRelativeEpsilonColumns) {
  const auto result = c::run_table1(tiny_sensitivity(), {3});
  std::ostringstream ss;
  c::print_table1(ss, result);
  EXPECT_NE(ss.str().find("rel"), std::string::npos);
  EXPECT_NE(ss.str().find("%"), std::string::npos);
  EXPECT_EQ(ss.str().find("bits"), std::string::npos);
}

TEST(Table1Sensitivity, MeasureSpeedupWorksOnQualityMetric) {
  const auto bench = tiny_sensitivity();
  const auto result = c::run_table1(bench, {3});
  const auto timing = c::measure_speedup(bench, result, 3);
  // This toy simulator is a nanosecond lambda — cheaper than a kriging
  // solve — so the honest speed-up is BELOW 1: the method only pays when
  // t_sim >> t_krig (as in every real benchmark). Assert consistency of
  // the report, not a gain.
  EXPECT_GT(timing.speedup, 0.0);
  EXPECT_GE(timing.p, 0.0);
  EXPECT_LE(timing.p, 1.0);
  EXPECT_GT(timing.krig_seconds, 0.0);
}

TEST(DecisionDivergence, RunsOnSensitivityOptimizer) {
  const auto bench = tiny_sensitivity();
  d::PolicyOptions options;
  options.distance = 2;
  const auto report = c::run_decision_divergence(bench, options);
  EXPECT_GT(report.exact_steps, 0u);
  EXPECT_GE(report.diverging_percent, 0.0);
  EXPECT_LE(report.diverging_percent, 100.0);
  EXPECT_EQ(report.exact_result.size(), 3u);
  EXPECT_EQ(report.kriging_result.size(), 3u);
}

TEST(Table1, PolicyKnobsArePlumbedThrough) {
  const auto bench = tiny_sensitivity();
  // nn_min high enough that nothing can be interpolated.
  d::PolicyOptions strict;
  strict.nn_min = 1000;
  const auto result = c::run_table1(bench, {4}, strict);
  EXPECT_DOUBLE_EQ(result.rows[0].p_percent, 0.0);

  // Regression-kriging drift plumbed through without breaking anything.
  d::PolicyOptions drifted;
  drifted.drift = ace::kriging::DriftKind::kLinear;
  const auto result2 = c::run_table1(bench, {4}, drifted);
  EXPECT_GE(result2.rows[0].p_percent, 0.0);
}

TEST(Table1, SameTrajectoryAcrossPolicyKnobs) {
  // The exact trajectory must not depend on replay policy settings.
  const auto bench = tiny_sensitivity();
  const auto a = c::run_table1(bench, {2});
  d::PolicyOptions other;
  other.nn_min = 3;
  const auto b = c::run_table1(bench, {5}, other);
  ASSERT_EQ(a.trajectory.size(), b.trajectory.size());
  for (std::size_t i = 0; i < a.trajectory.size(); ++i) {
    EXPECT_EQ(a.trajectory.configs[i], b.trajectory.configs[i]);
    EXPECT_DOUBLE_EQ(a.trajectory.values[i], b.trajectory.values[i]);
  }
}

}  // namespace
