#include "dse/trajectory.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

namespace {

namespace d = ace::dse;

TEST(TrajectoryRecorder, NullSimulatorThrows) {
  EXPECT_THROW(d::TrajectoryRecorder(nullptr), std::invalid_argument);
}

TEST(TrajectoryRecorder, MemoizesAndRecordsInOrder) {
  std::size_t calls = 0;
  d::TrajectoryRecorder rec([&](const d::Config& c) {
    ++calls;
    return static_cast<double>(c[0]);
  });
  EXPECT_DOUBLE_EQ(rec.evaluate({3}), 3.0);
  EXPECT_DOUBLE_EQ(rec.evaluate({5}), 5.0);
  EXPECT_DOUBLE_EQ(rec.evaluate({3}), 3.0);  // Cache hit.
  EXPECT_EQ(calls, 2u);
  EXPECT_EQ(rec.cache_hits(), 1u);
  EXPECT_EQ(rec.unique_evaluations(), 2u);
  ASSERT_EQ(rec.trajectory().size(), 2u);
  EXPECT_EQ(rec.trajectory().configs[0], (d::Config{3}));
  EXPECT_EQ(rec.trajectory().configs[1], (d::Config{5}));
  EXPECT_DOUBLE_EQ(rec.trajectory().values[1], 5.0);
}

TEST(TrajectoryRecorder, AsSimulatorSharesState) {
  d::TrajectoryRecorder rec(
      [](const d::Config& c) { return static_cast<double>(c[0] * 2); });
  auto sim = rec.as_simulator();
  EXPECT_DOUBLE_EQ(sim({4}), 8.0);
  EXPECT_EQ(rec.unique_evaluations(), 1u);
}

TEST(InterpolationEpsilon, AccuracyDbUsesEquation11) {
  // λ = −P_dB. True P = 1e-5 → λ = 50. Estimate λ̂ = 47 → P̂ = 10^(−4.7);
  // ε = |log2(P̂/P)| = |(−47 + 50)/10 · log2(10)| ≈ 0.9966.
  const double eps = d::interpolation_epsilon(47.0, 50.0,
                                              d::MetricKind::kAccuracyDb);
  EXPECT_NEAR(eps, 3.0 / 10.0 * std::log2(10.0), 1e-9);
  // Exact estimate: zero error.
  EXPECT_DOUBLE_EQ(
      d::interpolation_epsilon(50.0, 50.0, d::MetricKind::kAccuracyDb), 0.0);
}

TEST(InterpolationEpsilon, QualityRateUsesEquation12) {
  EXPECT_DOUBLE_EQ(
      d::interpolation_epsilon(0.81, 0.9, d::MetricKind::kQualityRate), 0.1);
  EXPECT_DOUBLE_EQ(
      d::interpolation_epsilon(0.99, 0.9, d::MetricKind::kQualityRate), 0.1);
}

d::Trajectory line_trajectory(int n) {
  // 1-D walk over a smooth dB-accuracy curve λ(x) = 3x + 10.
  d::Trajectory t;
  for (int i = 0; i < n; ++i) {
    t.configs.push_back({i});
    t.values.push_back(3.0 * i + 10.0);
  }
  return t;
}

TEST(Replay, RaggedTrajectoryThrows) {
  d::Trajectory bad;
  bad.configs.push_back({1});
  EXPECT_THROW(
      (void)d::replay_with_kriging(bad, {}, d::MetricKind::kAccuracyDb),
      std::invalid_argument);
}

TEST(Replay, InterpolatesTailOfDenseTrajectory) {
  const auto t = line_trajectory(30);
  d::PolicyOptions options;
  options.distance = 3;
  options.min_fit_points = 8;
  const auto report =
      d::replay_with_kriging(t, options, d::MetricKind::kAccuracyDb);
  EXPECT_EQ(report.records.size(), 30u);
  EXPECT_GT(report.stats.interpolated, 0u);
  EXPECT_EQ(report.stats.total, 30u);
  EXPECT_EQ(report.stats.simulated + report.stats.interpolated, 30u);
  // Linear λ: interpolation should be extremely accurate (sub-0.2 bit).
  EXPECT_LT(report.mean_epsilon(), 0.2);
  EXPECT_GE(report.max_epsilon(), report.mean_epsilon());
  EXPECT_GT(report.interpolated_fraction(), 0.3);
  EXPECT_GT(report.mean_neighbors(), 1.0);
}

TEST(Replay, SimulatedRecordsCarryTrueValues) {
  const auto t = line_trajectory(12);
  d::PolicyOptions options;
  options.distance = 2;
  options.min_fit_points = 6;
  const auto report =
      d::replay_with_kriging(t, options, d::MetricKind::kAccuracyDb);
  for (const auto& r : report.records) {
    EXPECT_DOUBLE_EQ(r.true_value, t.values[r.index]);
    if (!r.interpolated) {
      EXPECT_DOUBLE_EQ(r.estimate, r.true_value);
      EXPECT_DOUBLE_EQ(r.epsilon, 0.0);
    }
  }
}

TEST(Replay, LargerDistanceInterpolatesMore) {
  const auto t = line_trajectory(40);
  auto fraction_at = [&](int dist) {
    d::PolicyOptions options;
    options.distance = dist;
    options.min_fit_points = 8;
    return d::replay_with_kriging(t, options, d::MetricKind::kAccuracyDb)
        .interpolated_fraction();
  };
  EXPECT_LE(fraction_at(1), fraction_at(3));
  EXPECT_LE(fraction_at(3), fraction_at(6));
}

TEST(Replay, DeterministicAcrossRuns) {
  const auto t = line_trajectory(25);
  d::PolicyOptions options;
  options.distance = 3;
  options.min_fit_points = 8;
  const auto a =
      d::replay_with_kriging(t, options, d::MetricKind::kAccuracyDb);
  const auto b =
      d::replay_with_kriging(t, options, d::MetricKind::kAccuracyDb);
  ASSERT_EQ(a.records.size(), b.records.size());
  for (std::size_t i = 0; i < a.records.size(); ++i) {
    EXPECT_EQ(a.records[i].interpolated, b.records[i].interpolated);
    EXPECT_DOUBLE_EQ(a.records[i].estimate, b.records[i].estimate);
  }
}

TEST(Replay, EmptyTrajectoryYieldsEmptyReport) {
  const d::Trajectory empty;
  const auto report =
      d::replay_with_kriging(empty, {}, d::MetricKind::kAccuracyDb);
  EXPECT_TRUE(report.records.empty());
  EXPECT_DOUBLE_EQ(report.max_epsilon(), 0.0);
  EXPECT_DOUBLE_EQ(report.mean_epsilon(), 0.0);
}

}  // namespace
