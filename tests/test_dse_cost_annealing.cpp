#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

#include "dse/annealing.hpp"
#include "dse/cost.hpp"

namespace {

namespace d = ace::dse;

TEST(CostModels, LinearAndQuadratic) {
  EXPECT_DOUBLE_EQ(d::linear_cost({2, 3, 5}), 10.0);
  EXPECT_DOUBLE_EQ(d::quadratic_cost({2, 3}), 13.0);
  EXPECT_DOUBLE_EQ(d::linear_cost({}), 0.0);
}

TEST(WeightedCostModel, DefaultWeightsAreOnes) {
  const d::WeightedCostModel model({}, {});
  EXPECT_DOUBLE_EQ(model({2, 3}), 2.0 + 3.0 + 4.0 + 9.0);
}

TEST(WeightedCostModel, CustomWeightsAndValidation) {
  const d::WeightedCostModel model({1.0, 0.0}, {0.0, 2.0});
  // 1·2 + 0·3 + 0·4 + 2·9 = 20.
  EXPECT_DOUBLE_EQ(model({2, 3}), 20.0);
  EXPECT_THROW((void)model({2, 3, 4}), std::invalid_argument);
  const auto fn = model.as_function();
  EXPECT_DOUBLE_EQ(fn({2, 3}), 20.0);
}

/// Separable test surface: λ(w) = 6·Σ w_i, feasible iff Σ w_i >= λm/6.
double separable(const d::Config& w) { return 6.0 * d::linear_cost(w); }

TEST(Annealing, Validation) {
  const d::Lattice lat(2, 2, 16);
  d::AnnealingOptions o;
  o.cost = nullptr;
  EXPECT_THROW((void)d::simulated_annealing(separable, lat, o),
               std::invalid_argument);
  o = {};
  o.iterations = 0;
  EXPECT_THROW((void)d::simulated_annealing(separable, lat, o),
               std::invalid_argument);
  o = {};
  o.initial_temperature = 0.0;
  EXPECT_THROW((void)d::simulated_annealing(separable, lat, o),
               std::invalid_argument);
  o = {};
  o.cooling = 1.5;
  EXPECT_THROW((void)d::simulated_annealing(separable, lat, o),
               std::invalid_argument);
}

TEST(Annealing, FindsCheapFeasibleSolutionOnSeparableSurface) {
  const d::Lattice lat(3, 2, 16);
  d::AnnealingOptions o;
  o.lambda_min = 120.0;  // Needs Σ w = 20.
  o.iterations = 6000;
  o.seed = 9;
  const auto r = d::simulated_annealing(separable, lat, o);
  EXPECT_TRUE(r.feasible);
  EXPECT_GE(r.best_lambda, o.lambda_min);
  // Optimum cost is exactly 20; annealing should land close.
  EXPECT_LE(r.best_cost, 24.0);
  EXPECT_GE(r.best_cost, 20.0);
  EXPECT_GT(r.evaluations, 100u);
  EXPECT_GT(r.accepted, 0u);
}

TEST(Annealing, DeterministicGivenSeed) {
  const d::Lattice lat(2, 2, 12);
  d::AnnealingOptions o;
  o.lambda_min = 60.0;
  o.iterations = 1500;
  o.seed = 4;
  const auto a = d::simulated_annealing(separable, lat, o);
  const auto b = d::simulated_annealing(separable, lat, o);
  EXPECT_EQ(a.best, b.best);
  EXPECT_EQ(a.evaluations, b.evaluations);
  EXPECT_EQ(a.accepted, b.accepted);
}

TEST(Annealing, StartsFeasibleAtUpperCorner) {
  const d::Lattice lat(2, 2, 16);
  d::AnnealingOptions o;
  o.lambda_min = 6.0 * 32.0;  // Only the upper corner is feasible.
  o.iterations = 300;
  const auto r = d::simulated_annealing(separable, lat, o);
  EXPECT_TRUE(r.feasible);
  EXPECT_EQ(r.best, lat.uniform(16));
}

TEST(Annealing, InfeasibleProblemReportsInfeasible) {
  const d::Lattice lat(2, 2, 8);
  d::AnnealingOptions o;
  o.lambda_min = 1e9;
  o.iterations = 500;
  const auto r = d::simulated_annealing(separable, lat, o);
  EXPECT_FALSE(r.feasible);
  EXPECT_LT(r.best_lambda, o.lambda_min);
}

TEST(Annealing, QuadraticCostPrefersBalancedSolutions) {
  // With λ = 6·Σw and quadratic cost, balanced configurations dominate:
  // for a fixed feasible sum, Σw² is minimized by equal coordinates.
  const d::Lattice lat(2, 2, 16);
  d::AnnealingOptions o;
  o.lambda_min = 120.0;  // Σ w >= 20.
  o.cost = d::quadratic_cost;
  o.iterations = 8000;
  o.seed = 21;
  const auto r = d::simulated_annealing(separable, lat, o);
  ASSERT_TRUE(r.feasible);
  EXPECT_LE(std::abs(r.best[0] - r.best[1]), 2);
}

}  // namespace
