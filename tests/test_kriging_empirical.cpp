#include "kriging/empirical_variogram.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace {

namespace k = ace::kriging;

TEST(Distances, L1AndL2) {
  EXPECT_DOUBLE_EQ(k::l1_distance({0.0, 0.0}, {3.0, 4.0}), 7.0);
  EXPECT_DOUBLE_EQ(k::l2_distance({0.0, 0.0}, {3.0, 4.0}), 5.0);
  EXPECT_DOUBLE_EQ(k::l1_distance({1.0}, {1.0}), 0.0);
  EXPECT_THROW((void)k::l1_distance({1.0}, {1.0, 2.0}), std::invalid_argument);
  EXPECT_THROW((void)k::l2_distance({1.0}, {1.0, 2.0}), std::invalid_argument);
}

TEST(EmpiricalVariogram, HandComputedTwoPoints) {
  // Two samples at L1 distance 2 with values 1 and 3:
  // γ̂(2) = (3−1)² / (2·1) = 2.
  const std::vector<std::vector<double>> pts = {{0.0, 0.0}, {1.0, 1.0}};
  const std::vector<double> vals = {1.0, 3.0};
  k::EmpiricalVariogram ev(pts, vals);
  ASSERT_EQ(ev.bins().size(), 1u);
  EXPECT_DOUBLE_EQ(ev.bins()[0].distance, 2.0);
  EXPECT_DOUBLE_EQ(ev.bins()[0].gamma, 2.0);
  EXPECT_EQ(ev.bins()[0].pair_count, 1u);
  EXPECT_EQ(ev.total_pairs(), 1u);
  EXPECT_DOUBLE_EQ(ev.max_distance(), 2.0);
}

TEST(EmpiricalVariogram, HandComputedThreeCollinearPoints) {
  // Points 0, 1, 2 on a line with values 0, 1, 4.
  // Pairs at d=1: (0,1): (1)², (1,2): (3)² → γ̂(1) = (1+9)/(2·2) = 2.5.
  // Pair at d=2: (0,2): (4)² → γ̂(2) = 16/2 = 8.
  const std::vector<std::vector<double>> pts = {{0.0}, {1.0}, {2.0}};
  const std::vector<double> vals = {0.0, 1.0, 4.0};
  k::EmpiricalVariogram ev(pts, vals);
  ASSERT_EQ(ev.bins().size(), 2u);
  EXPECT_DOUBLE_EQ(ev.bins()[0].gamma, 2.5);
  EXPECT_EQ(ev.bins()[0].pair_count, 2u);
  EXPECT_DOUBLE_EQ(ev.bins()[1].gamma, 8.0);
  EXPECT_EQ(ev.total_pairs(), 3u);
}

TEST(EmpiricalVariogram, FlatFieldHasZeroGamma) {
  const std::vector<std::vector<double>> pts = {{0.0}, {1.0}, {5.0}};
  const std::vector<double> vals = {2.0, 2.0, 2.0};
  k::EmpiricalVariogram ev(pts, vals);
  for (const auto& bin : ev.bins()) EXPECT_DOUBLE_EQ(bin.gamma, 0.0);
  EXPECT_DOUBLE_EQ(ev.value_variance(), 0.0);
}

TEST(EmpiricalVariogram, ValueVarianceIsSampleVariance) {
  const std::vector<std::vector<double>> pts = {{0.0}, {1.0}, {2.0}, {3.0}};
  const std::vector<double> vals = {1.0, 2.0, 3.0, 4.0};
  k::EmpiricalVariogram ev(pts, vals);
  EXPECT_NEAR(ev.value_variance(), 5.0 / 3.0, 1e-12);
}

TEST(EmpiricalVariogram, WideBinsGroupDistances) {
  const std::vector<std::vector<double>> pts = {{0.0}, {1.0}, {2.0}};
  const std::vector<double> vals = {0.0, 1.0, 4.0};
  // With bin_width 5, all three pairs fall in one bin.
  k::EmpiricalVariogram ev(pts, vals, k::l1_distance, 5.0);
  ASSERT_EQ(ev.bins().size(), 1u);
  EXPECT_EQ(ev.bins()[0].pair_count, 3u);
  // γ̂ = (1 + 9 + 16) / (2·3).
  EXPECT_DOUBLE_EQ(ev.bins()[0].gamma, 26.0 / 6.0);
  // Representative distance is the mean pair distance (1+1+2)/3.
  EXPECT_NEAR(ev.bins()[0].distance, 4.0 / 3.0, 1e-12);
}

TEST(EmpiricalVariogram, Validation) {
  EXPECT_THROW(k::EmpiricalVariogram({{0.0}}, {1.0}), std::invalid_argument);
  EXPECT_THROW(k::EmpiricalVariogram({{0.0}, {1.0}}, {1.0}),
               std::invalid_argument);
  EXPECT_THROW(
      k::EmpiricalVariogram({{0.0}, {1.0}}, {1.0, 2.0}, k::l1_distance, 0.0),
      std::invalid_argument);
}

TEST(EmpiricalVariogram, L2DistanceOption) {
  const std::vector<std::vector<double>> pts = {{0.0, 0.0}, {3.0, 4.0}};
  const std::vector<double> vals = {0.0, 2.0};
  k::EmpiricalVariogram ev(pts, vals, k::l2_distance);
  ASSERT_EQ(ev.bins().size(), 1u);
  EXPECT_DOUBLE_EQ(ev.bins()[0].distance, 5.0);
}

}  // namespace
