#include "kriging/empirical_variogram.hpp"

#include <gtest/gtest.h>

#include <limits>
#include <stdexcept>
#include <vector>

#include "util/errors.hpp"
#include "util/rng.hpp"

namespace {

namespace k = ace::kriging;

TEST(Distances, L1AndL2) {
  EXPECT_DOUBLE_EQ(k::l1_distance({0.0, 0.0}, {3.0, 4.0}), 7.0);
  EXPECT_DOUBLE_EQ(k::l2_distance({0.0, 0.0}, {3.0, 4.0}), 5.0);
  EXPECT_DOUBLE_EQ(k::l1_distance({1.0}, {1.0}), 0.0);
  EXPECT_THROW((void)k::l1_distance({1.0}, {1.0, 2.0}), std::invalid_argument);
  EXPECT_THROW((void)k::l2_distance({1.0}, {1.0, 2.0}), std::invalid_argument);
}

TEST(EmpiricalVariogram, HandComputedTwoPoints) {
  // Two samples at L1 distance 2 with values 1 and 3:
  // γ̂(2) = (3−1)² / (2·1) = 2.
  const std::vector<std::vector<double>> pts = {{0.0, 0.0}, {1.0, 1.0}};
  const std::vector<double> vals = {1.0, 3.0};
  k::EmpiricalVariogram ev(pts, vals);
  ASSERT_EQ(ev.bins().size(), 1u);
  EXPECT_DOUBLE_EQ(ev.bins()[0].distance, 2.0);
  EXPECT_DOUBLE_EQ(ev.bins()[0].gamma, 2.0);
  EXPECT_EQ(ev.bins()[0].pair_count, 1u);
  EXPECT_EQ(ev.total_pairs(), 1u);
  EXPECT_DOUBLE_EQ(ev.max_distance(), 2.0);
}

TEST(EmpiricalVariogram, HandComputedThreeCollinearPoints) {
  // Points 0, 1, 2 on a line with values 0, 1, 4.
  // Pairs at d=1: (0,1): (1)², (1,2): (3)² → γ̂(1) = (1+9)/(2·2) = 2.5.
  // Pair at d=2: (0,2): (4)² → γ̂(2) = 16/2 = 8.
  const std::vector<std::vector<double>> pts = {{0.0}, {1.0}, {2.0}};
  const std::vector<double> vals = {0.0, 1.0, 4.0};
  k::EmpiricalVariogram ev(pts, vals);
  ASSERT_EQ(ev.bins().size(), 2u);
  EXPECT_DOUBLE_EQ(ev.bins()[0].gamma, 2.5);
  EXPECT_EQ(ev.bins()[0].pair_count, 2u);
  EXPECT_DOUBLE_EQ(ev.bins()[1].gamma, 8.0);
  EXPECT_EQ(ev.total_pairs(), 3u);
}

TEST(EmpiricalVariogram, FlatFieldHasZeroGamma) {
  const std::vector<std::vector<double>> pts = {{0.0}, {1.0}, {5.0}};
  const std::vector<double> vals = {2.0, 2.0, 2.0};
  k::EmpiricalVariogram ev(pts, vals);
  for (const auto& bin : ev.bins()) EXPECT_DOUBLE_EQ(bin.gamma, 0.0);
  EXPECT_DOUBLE_EQ(ev.value_variance(), 0.0);
}

TEST(EmpiricalVariogram, ValueVarianceIsSampleVariance) {
  const std::vector<std::vector<double>> pts = {{0.0}, {1.0}, {2.0}, {3.0}};
  const std::vector<double> vals = {1.0, 2.0, 3.0, 4.0};
  k::EmpiricalVariogram ev(pts, vals);
  EXPECT_NEAR(ev.value_variance(), 5.0 / 3.0, 1e-12);
}

TEST(EmpiricalVariogram, WideBinsGroupDistances) {
  const std::vector<std::vector<double>> pts = {{0.0}, {1.0}, {2.0}};
  const std::vector<double> vals = {0.0, 1.0, 4.0};
  // With bin_width 5, all three pairs fall in one bin.
  k::EmpiricalVariogram ev(pts, vals, k::l1_distance, 5.0);
  ASSERT_EQ(ev.bins().size(), 1u);
  EXPECT_EQ(ev.bins()[0].pair_count, 3u);
  // γ̂ = (1 + 9 + 16) / (2·3).
  EXPECT_DOUBLE_EQ(ev.bins()[0].gamma, 26.0 / 6.0);
  // Representative distance is the mean pair distance (1+1+2)/3.
  EXPECT_NEAR(ev.bins()[0].distance, 4.0 / 3.0, 1e-12);
}

TEST(EmpiricalVariogram, Validation) {
  EXPECT_THROW(k::EmpiricalVariogram({{0.0}}, {1.0}), std::invalid_argument);
  EXPECT_THROW(k::EmpiricalVariogram({{0.0}, {1.0}}, {1.0}),
               std::invalid_argument);
  EXPECT_THROW(
      k::EmpiricalVariogram({{0.0}, {1.0}}, {1.0, 2.0}, k::l1_distance, 0.0),
      std::invalid_argument);
}

TEST(EmpiricalVariogram, L2DistanceOption) {
  const std::vector<std::vector<double>> pts = {{0.0, 0.0}, {3.0, 4.0}};
  const std::vector<double> vals = {0.0, 2.0};
  k::EmpiricalVariogram ev(pts, vals, k::l2_distance);
  ASSERT_EQ(ev.bins().size(), 1u);
  EXPECT_DOUBLE_EQ(ev.bins()[0].distance, 5.0);
}

TEST(EmpiricalVariogram, ExtendFromEmptyAccumulates) {
  k::EmpiricalVariogram ev;
  EXPECT_EQ(ev.sample_count(), 0u);
  EXPECT_TRUE(ev.bins().empty());

  ev.extend({{0.0}, {1.0}}, {0.0, 1.0});
  EXPECT_EQ(ev.sample_count(), 2u);
  EXPECT_EQ(ev.total_pairs(), 1u);

  ev.extend({{2.0}}, {4.0});
  EXPECT_EQ(ev.sample_count(), 3u);
  EXPECT_EQ(ev.total_pairs(), 3u);
  // Matches the hand-computed three-collinear-points case exactly.
  ASSERT_EQ(ev.bins().size(), 2u);
  EXPECT_DOUBLE_EQ(ev.bins()[0].gamma, 2.5);
  EXPECT_DOUBLE_EQ(ev.bins()[1].gamma, 8.0);
  EXPECT_DOUBLE_EQ(ev.max_distance(), 2.0);
}

TEST(EmpiricalVariogram, ExtendInChunksMatchesOneShotBuild) {
  // 40 random 3-d points folded in as 7 + 13 + 20 must produce the same
  // variogram as the one-shot constructor over all 40.
  ace::util::Rng rng(2024);
  std::vector<std::vector<double>> pts;
  std::vector<double> vals;
  for (int i = 0; i < 40; ++i) {
    pts.push_back({static_cast<double>(rng.uniform_int(0, 12)),
                   static_cast<double>(rng.uniform_int(0, 12)),
                   static_cast<double>(rng.uniform_int(0, 12))});
    vals.push_back(rng.uniform(-5.0, 5.0));
  }
  const k::EmpiricalVariogram oneshot(pts, vals);

  k::EmpiricalVariogram chunked;
  std::size_t at = 0;
  for (const std::size_t chunk : {7u, 13u, 20u}) {
    chunked.extend(
        std::vector<std::vector<double>>(pts.begin() + static_cast<long>(at),
                                         pts.begin() +
                                             static_cast<long>(at + chunk)),
        std::vector<double>(vals.begin() + static_cast<long>(at),
                            vals.begin() + static_cast<long>(at + chunk)));
    at += chunk;
  }

  EXPECT_EQ(chunked.sample_count(), oneshot.sample_count());
  EXPECT_EQ(chunked.total_pairs(), oneshot.total_pairs());
  EXPECT_DOUBLE_EQ(chunked.max_distance(), oneshot.max_distance());
  EXPECT_NEAR(chunked.value_variance(), oneshot.value_variance(), 1e-12);
  ASSERT_EQ(chunked.bins().size(), oneshot.bins().size());
  for (std::size_t b = 0; b < oneshot.bins().size(); ++b) {
    EXPECT_EQ(chunked.bins()[b].pair_count, oneshot.bins()[b].pair_count);
    EXPECT_NEAR(chunked.bins()[b].distance, oneshot.bins()[b].distance,
                1e-12);
    EXPECT_NEAR(chunked.bins()[b].gamma, oneshot.bins()[b].gamma, 1e-12);
  }
}

TEST(EmpiricalVariogram, ExtendValidatesSizes) {
  k::EmpiricalVariogram ev;
  EXPECT_THROW(ev.extend({{0.0}, {1.0}}, {1.0}), std::invalid_argument);
}

TEST(EmpiricalVariogram, ExtendRejectsNonFiniteWithoutTouchingBins) {
  // Regression guard: one NaN sample used to poison every bin its pairs
  // fell into, silently degrading krige() from then on. Now the batch is
  // validated up front and a bad batch leaves the accumulators untouched.
  k::EmpiricalVariogram ev({{0.0}, {1.0}, {2.0}}, {0.0, 1.0, 4.0});
  const auto bins_before = ev.bins();
  const std::size_t pairs_before = ev.total_pairs();

  const double nan = std::numeric_limits<double>::quiet_NaN();
  EXPECT_THROW(ev.extend({{3.0}, {4.0}}, {2.0, nan}),
               ace::util::NonFiniteError);
  EXPECT_THROW(ev.extend({{3.0}}, {std::numeric_limits<double>::infinity()}),
               ace::util::NonFiniteError);
  EXPECT_THROW(ev.extend({{nan}}, {1.0}), ace::util::NonFiniteError);

  // Nothing was folded — not even the finite samples of the bad batch.
  EXPECT_EQ(ev.sample_count(), 3u);
  EXPECT_EQ(ev.total_pairs(), pairs_before);
  ASSERT_EQ(ev.bins().size(), bins_before.size());
  for (std::size_t b = 0; b < bins_before.size(); ++b) {
    EXPECT_DOUBLE_EQ(ev.bins()[b].gamma, bins_before[b].gamma);
    EXPECT_EQ(ev.bins()[b].pair_count, bins_before[b].pair_count);
  }

  // A clean batch afterwards still folds normally.
  ev.extend({{3.0}}, {9.0});
  EXPECT_EQ(ev.sample_count(), 4u);
}

}  // namespace
