#include "signal/iir.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <complex>
#include <numbers>
#include <stdexcept>

#include "metrics/noise_power.hpp"
#include "signal/generator.hpp"
#include "util/rng.hpp"

namespace {

namespace s = ace::signal;

TEST(BiquadDesign, Validation) {
  EXPECT_THROW((void)s::design_lowpass_biquad(0.0, 1.0), std::invalid_argument);
  EXPECT_THROW((void)s::design_lowpass_biquad(0.5, 1.0), std::invalid_argument);
  EXPECT_THROW((void)s::design_lowpass_biquad(0.2, 0.0), std::invalid_argument);
}

TEST(BiquadDesign, DcGainIsUnity) {
  const auto c = s::design_lowpass_biquad(0.1, 0.707);
  // H(1) = (b0 + b1 + b2) / (1 + a1 + a2).
  const double gain = (c.b0 + c.b1 + c.b2) / (1.0 + c.a1 + c.a2);
  EXPECT_NEAR(gain, 1.0, 1e-10);
  EXPECT_TRUE(c.is_stable());
}

TEST(BiquadStability, TriangleCondition) {
  s::BiquadCoefficients c;
  c.a1 = 0.0;
  c.a2 = 0.5;
  EXPECT_TRUE(c.is_stable());
  c.a2 = 1.1;
  EXPECT_FALSE(c.is_stable());
  c.a2 = 0.2;
  c.a1 = 1.3;
  EXPECT_FALSE(c.is_stable());
}

TEST(Butterworth, ValidationAndSectionCount) {
  EXPECT_THROW((void)s::design_butterworth_lowpass(3, 0.1),
               std::invalid_argument);
  EXPECT_THROW((void)s::design_butterworth_lowpass(0, 0.1),
               std::invalid_argument);
  const auto sections = s::design_butterworth_lowpass(8, 0.12);
  EXPECT_EQ(sections.size(), 4u);
  for (const auto& c : sections) EXPECT_TRUE(c.is_stable());
}

TEST(Butterworth, MagnitudeResponseIsLowpass) {
  const auto sections = s::design_butterworth_lowpass(8, 0.12);
  auto cascade_mag = [&](double f) {
    double mag = 1.0;
    for (const auto& c : sections) {
      const double w = 2.0 * std::numbers::pi * f;
      const std::complex<double> z = std::polar(1.0, w);
      const std::complex<double> num =
          c.b0 + c.b1 / z + c.b2 / (z * z);
      const std::complex<double> den = 1.0 + c.a1 / z + c.a2 / (z * z);
      mag *= std::abs(num / den);
    }
    return mag;
  };
  EXPECT_NEAR(cascade_mag(0.001), 1.0, 1e-3);       // Passband.
  EXPECT_NEAR(cascade_mag(0.12), 1.0 / std::sqrt(2.0), 0.05);  // -3 dB point.
  EXPECT_LT(cascade_mag(0.3), 1e-3);                // Stopband.
}

TEST(Biquad, ImpulseResponseMatchesDifferenceEquation) {
  s::BiquadCoefficients c;
  c.b0 = 1.0;
  c.a1 = -0.5;  // y[n] = x[n] + 0.5·y[n-1].
  s::Biquad bq(c);
  EXPECT_DOUBLE_EQ(bq.process(1.0), 1.0);
  EXPECT_DOUBLE_EQ(bq.process(0.0), 0.5);
  EXPECT_DOUBLE_EQ(bq.process(0.0), 0.25);
  bq.reset();
  EXPECT_DOUBLE_EQ(bq.process(1.0), 1.0);
}

TEST(IirCascade, Validation) {
  EXPECT_THROW(s::IirCascade({}), std::invalid_argument);
  s::BiquadCoefficients unstable;
  unstable.a2 = 1.5;
  EXPECT_THROW(s::IirCascade({unstable}), std::invalid_argument);
}

TEST(IirCascade, MatchesSingleBiquadWhenOneSection) {
  const auto c = s::design_lowpass_biquad(0.15, 0.9);
  const s::IirCascade cascade({c});
  s::Biquad bq(c);
  ace::util::Rng rng(4);
  const auto input = s::white_noise(rng, 64);
  const auto out = cascade.filter(input);
  for (std::size_t i = 0; i < input.size(); ++i)
    EXPECT_DOUBLE_EQ(out[i], bq.process(input[i]));
}

TEST(QuantizedIir, ValidationAndVariableCount) {
  const s::IirCascade iir(s::design_butterworth_lowpass(8, 0.12));
  ace::util::Rng rng(5);
  const auto cal = s::noisy_multitone(rng, 256);
  const s::QuantizedIirCascade q(iir, cal);
  EXPECT_EQ(q.variable_count(), 5u);  // 4 accumulators + shared data.
  EXPECT_THROW((void)q.filter(cal, {8, 8, 8, 8}), std::invalid_argument);
  EXPECT_THROW((void)q.filter(cal, {8, 8, 8, 8, 1}), std::invalid_argument);
  EXPECT_THROW(s::QuantizedIirCascade(iir, {}), std::invalid_argument);
}

TEST(QuantizedIir, WideWordsConvergeToReference) {
  const s::IirCascade iir(s::design_butterworth_lowpass(8, 0.12));
  ace::util::Rng rng(6);
  const auto input = s::noisy_multitone(rng, 512);
  const s::QuantizedIirCascade q(iir, input);
  const auto ref = iir.filter(input);
  const auto approx = q.filter(input, {40, 40, 40, 40, 40});
  EXPECT_LT(ace::metrics::noise_power(approx, ref), 1e-14);
}

class IirMonotoneTest : public ::testing::TestWithParam<int> {};

TEST_P(IirMonotoneTest, NoiseShrinksWithWiderWords) {
  const int w = GetParam();
  const s::IirCascade iir(s::design_butterworth_lowpass(8, 0.12));
  ace::util::Rng rng(7);
  const auto input = s::noisy_multitone(rng, 384);
  const s::QuantizedIirCascade q(iir, input);
  const auto ref = iir.filter(input);
  const std::vector<int> narrow(5, w);
  const std::vector<int> wide(5, w + 4);
  EXPECT_LT(ace::metrics::noise_power(q.filter(input, wide), ref),
            ace::metrics::noise_power(q.filter(input, narrow), ref));
}

INSTANTIATE_TEST_SUITE_P(Widths, IirMonotoneTest,
                         ::testing::Values(8, 10, 12, 14));

TEST(QuantizedIir, Deterministic) {
  const s::IirCascade iir(s::design_butterworth_lowpass(4, 0.2));
  ace::util::Rng rng(8);
  const auto input = s::noisy_multitone(rng, 128);
  const s::QuantizedIirCascade q(iir, input);
  const std::vector<int> w = {10, 11, 12};
  EXPECT_EQ(q.filter(input, w), q.filter(input, w));
}

}  // namespace
