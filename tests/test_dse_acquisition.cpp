// The pluggable acquisition layer (ISSUE 10): gate semantics in
// isolation, make_gate's legacy-option absorption, and the policy-level
// wiring — LOO calibration after refits, per-gate counters, and the
// restore-replay reconstruction of gate state.
#include "dse/acquisition.hpp"

#include <gtest/gtest.h>

#include <cstddef>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "dse/kriging_policy.hpp"

namespace {

namespace d = ace::dse;

d::GateSolution solution(double estimate, double variance, double sill) {
  d::GateSolution s;
  s.estimate = estimate;
  s.variance = variance;
  s.sill = sill;
  return s;
}

d::LooSummary summary(std::size_t count, double mean_abs, double mean_sq) {
  d::LooSummary s;
  s.count = count;
  s.mean_abs_residual = mean_abs;
  s.mean_sq_standardized = mean_sq;
  return s;
}

TEST(AcquisitionGate, NamesAreStable) {
  EXPECT_STREQ(d::gate_name(d::GateKind::kNeighbourCount), "neighbour-count");
  EXPECT_STREQ(d::gate_name(d::GateKind::kVariance), "variance");
  EXPECT_STREQ(d::gate_name(d::GateKind::kLooCalibrated), "loo-calibrated");
  EXPECT_STREQ(d::gate_name(d::GateKind::kSequentialDesign),
               "sequential-design");
}

TEST(AcquisitionGate, NeighbourCountGateReproducesThePaperRule) {
  d::PolicyOptions o;
  o.nn_min = 2;
  const auto gate = d::make_gate(o);
  ASSERT_EQ(gate->kind(), d::GateKind::kNeighbourCount);
  EXPECT_FALSE(gate->wants_loo());
  EXPECT_DOUBLE_EQ(gate->calibration(), 1.0);
  // The paper's strict `count > nn_min` test, nothing else.
  EXPECT_FALSE(gate->attempt({2}));
  EXPECT_TRUE(gate->attempt({3}));
  d::PolicyStats stats;
  EXPECT_TRUE(gate->accept(solution(0.0, 1e9, 1.0), stats));
  EXPECT_EQ(stats.variance_rejections, 0u);
}

TEST(AcquisitionGate, LegacyVarianceOptionSelectsTheVarianceGate) {
  // variance_gate predates the seam: a positive value on the default gate
  // kind must keep meaning what it always meant.
  d::PolicyOptions o;
  o.nn_min = 1;
  o.variance_gate = 0.5;
  const auto gate = d::make_gate(o);
  ASSERT_EQ(gate->kind(), d::GateKind::kVariance);
  d::PolicyStats stats;
  // The exact legacy predicate: reject when variance > gate · sill, only
  // when both the ceiling and the sill are known.
  EXPECT_TRUE(gate->accept(solution(0.0, 0.5, 1.0), stats));
  EXPECT_FALSE(gate->accept(solution(0.0, 0.51, 1.0), stats));
  EXPECT_EQ(stats.variance_rejections, 1u);
  EXPECT_TRUE(gate->accept(solution(0.0, 100.0, 0.0), stats));  // No sill.
  EXPECT_EQ(stats.variance_rejections, 1u);
}

TEST(AcquisitionGate, ExplicitVarianceGateDefaultsItsCeiling) {
  d::PolicyOptions o;
  o.gate = d::GateKind::kVariance;  // variance_gate left at 0.
  const auto gate = d::make_gate(o);
  ASSERT_EQ(gate->kind(), d::GateKind::kVariance);
  d::PolicyStats stats;
  EXPECT_TRUE(gate->accept(solution(0.0, 0.9, 1.0), stats));
  EXPECT_FALSE(gate->accept(solution(0.0, 1.1, 1.0), stats));
}

TEST(AcquisitionGate, LooCalibratedGateScalesVarianceByCalibration) {
  d::PolicyOptions o;
  o.gate = d::GateKind::kLooCalibrated;
  o.gate_nn_floor = 2;
  o.loo_gate = 1.0;
  const auto gate = d::make_gate(o);
  ASSERT_EQ(gate->kind(), d::GateKind::kLooCalibrated);
  EXPECT_TRUE(gate->wants_loo());
  // The floor is inclusive — variance evidence, not point count, vetoes.
  EXPECT_FALSE(gate->attempt({1}));
  EXPECT_TRUE(gate->attempt({2}));
  d::PolicyStats stats;
  // Uncalibrated (c = 1): plain variance ceiling.
  EXPECT_TRUE(gate->accept(solution(0.0, 0.9, 1.0), stats));
  EXPECT_FALSE(gate->accept(solution(0.0, 1.1, 1.0), stats));
  EXPECT_EQ(stats.loo_rejections, 1u);
  EXPECT_EQ(stats.variance_rejections, 0u);
  // An overconfident model (mean e²/σ² = 4) halves the tolerated variance
  // twice over: 0.3 · 4 > 1.0 now rejects.
  gate->calibrate(summary(8, 0.5, 4.0));
  EXPECT_DOUBLE_EQ(gate->calibration(), 4.0);
  EXPECT_FALSE(gate->accept(solution(0.0, 0.3, 1.0), stats));
  EXPECT_TRUE(gate->accept(solution(0.0, 0.2, 1.0), stats));
  // Degenerate passes are ignored; extreme ones are clamped.
  gate->calibrate(summary(0, 0.0, 100.0));
  EXPECT_DOUBLE_EQ(gate->calibration(), 4.0);
  gate->calibrate(summary(4, 0.1, 1e9));
  EXPECT_DOUBLE_EQ(gate->calibration(), 1e4);
  gate->calibrate(summary(4, 0.1, 1e-9));
  EXPECT_DOUBLE_EQ(gate->calibration(), 1e-2);
}

TEST(AcquisitionGate, SequentialDesignGateProtectsTheDecisionThreshold) {
  d::PolicyOptions o;
  o.gate = d::GateKind::kSequentialDesign;
  EXPECT_THROW(d::make_gate(o), std::invalid_argument);
  o.gate_lambda_min = 0.9;
  o.seq_confidence = 2.0;
  const auto gate = d::make_gate(o);
  ASSERT_EQ(gate->kind(), d::GateKind::kSequentialDesign);
  EXPECT_TRUE(gate->wants_loo());
  d::PolicyStats stats;
  // σ = 0.1, z = 2: trust the interpolation only 0.2 away from λ_min.
  EXPECT_FALSE(gate->accept(solution(1.0, 0.01, 1.0), stats));
  EXPECT_EQ(stats.sequential_rejections, 1u);
  EXPECT_TRUE(gate->accept(solution(1.2, 0.01, 1.0), stats));
  EXPECT_TRUE(gate->accept(solution(0.5, 0.01, 1.0), stats));
  // Calibration inflates σ: c = 4 doubles the protected band.
  gate->calibrate(summary(8, 0.5, 4.0));
  EXPECT_FALSE(gate->accept(solution(1.2, 0.01, 1.0), stats));
  EXPECT_EQ(stats.sequential_rejections, 2u);
}

TEST(AcquisitionGate, PolicyValidatesGateOptions) {
  {
    d::PolicyOptions o;
    o.loo_gate = 0.0;
    EXPECT_THROW(d::KrigingPolicy{o}, std::invalid_argument);
  }
  {
    d::PolicyOptions o;
    o.seq_confidence = -1.0;
    EXPECT_THROW(d::KrigingPolicy{o}, std::invalid_argument);
  }
  {
    d::PolicyOptions o;
    o.noise_nugget = -0.5;
    EXPECT_THROW(d::KrigingPolicy{o}, std::invalid_argument);
  }
  {
    d::PolicyOptions o;
    o.gate = d::GateKind::kSequentialDesign;  // Missing gate_lambda_min.
    EXPECT_THROW(d::KrigingPolicy{o}, std::invalid_argument);
  }
}

/// Mildly curved 2-D surface so kriging residuals are non-trivial and the
/// LOO pass has something to calibrate on.
double surface(const d::Config& c) {
  const double x = static_cast<double>(c[0]);
  const double y = static_cast<double>(c[1]);
  return -(x + 2.0 * y) + 0.05 * x * y;
}

d::PolicyOptions loo_policy_options() {
  d::PolicyOptions o;
  o.distance = 3;
  o.min_fit_points = 6;
  o.refit_period = 4;
  o.gate = d::GateKind::kLooCalibrated;
  o.gate_nn_floor = 2;
  o.loo_gate = 10.0;  // Wide open: this test watches calibration, not vetoes.
  return o;
}

std::vector<d::Config> seed_grid() {
  std::vector<d::Config> grid;
  for (int x = 0; x <= 4; ++x)
    for (int y = 0; y <= 4; ++y)
      if ((x + y) % 2 == 0) grid.push_back({x, y});
  return grid;
}

TEST(AcquisitionGate, PolicyRunsLooCalibrationAtRefits) {
  d::KrigingPolicy policy(loo_policy_options());
  EXPECT_EQ(policy.gate_kind(), d::GateKind::kLooCalibrated);
  EXPECT_DOUBLE_EQ(policy.gate_calibration(), 1.0);
  auto sim = [](const d::Config& c) { return surface(c); };
  for (const auto& c : seed_grid()) (void)policy.evaluate(c, sim);
  const auto seeded = policy.stats();
  ASSERT_GT(seeded.refits, 0u);
  EXPECT_GT(seeded.loo_passes, 0u);
  EXPECT_GT(seeded.loo_abs_error.count(), 0u);
  // A refit over the full seeded store yields a non-degenerate LOO pass
  // (the very first fit, at min_fit_points support, can produce a
  // variogram whose LOO variances all clamp to zero — that pass is
  // deliberately ignored by calibrate()).
  ASSERT_TRUE(policy.refit_model());
  const auto stats = policy.stats();
  EXPECT_GT(stats.loo_passes, seeded.loo_passes);
  EXPECT_NE(policy.gate_calibration(), 1.0);
}

TEST(AcquisitionGate, DefaultGatePaysNoLooCost) {
  d::PolicyOptions o;
  o.distance = 3;
  o.min_fit_points = 6;
  o.refit_period = 4;
  d::KrigingPolicy policy(o);
  auto sim = [](const d::Config& c) { return surface(c); };
  for (const auto& c : seed_grid()) (void)policy.evaluate(c, sim);
  const auto stats = policy.stats();
  ASSERT_GT(stats.refits, 0u);
  EXPECT_EQ(stats.loo_passes, 0u);
  EXPECT_EQ(stats.loo_abs_error.count(), 0u);
}

TEST(AcquisitionGate, RestoreReplayReconstructsGateCalibration) {
  d::KrigingPolicy policy(loo_policy_options());
  auto sim = [](const d::Config& c) { return surface(c); };
  for (const auto& c : seed_grid()) (void)policy.evaluate(c, sim);
  ASSERT_GT(policy.stats().loo_passes, 0u);

  d::KrigingPolicy resumed(loo_policy_options());
  resumed.restore(policy.snapshot());
  // Replayed refits re-run the identical LOO passes: calibration state and
  // every stats field (counters and RunningStats moments alike) coincide.
  EXPECT_EQ(resumed.gate_calibration(), policy.gate_calibration());
  EXPECT_EQ(resumed.stats(), policy.stats());

  // And the resumed policy keeps deciding identically.
  d::KrigingPolicy reference(loo_policy_options());
  d::KrigingPolicy restored(loo_policy_options());
  restored.restore(policy.snapshot());
  for (const auto& c : seed_grid()) (void)reference.evaluate(c, sim);
  const d::Config probe{1, 2};
  const auto a = reference.evaluate(probe, sim);
  const auto b = restored.evaluate(probe, sim);
  EXPECT_EQ(a, b);
}

TEST(AcquisitionGate, SequentialGateSavesSimulationsFarFromTheThreshold) {
  // On a surface far below λ_min everywhere, the sequential gate trusts
  // sparse interpolations the paper's nn_min rule would simulate.
  d::PolicyOptions base;
  base.distance = 3;
  base.min_fit_points = 6;
  base.refit_period = 4;
  base.nn_min = 3;

  d::PolicyOptions seq = base;
  seq.gate = d::GateKind::kSequentialDesign;
  seq.gate_nn_floor = 2;
  seq.gate_lambda_min = 1e6;  // Verdict beyond doubt everywhere.
  seq.seq_confidence = 2.0;

  auto sim = [](const d::Config& c) { return surface(c); };
  d::KrigingPolicy paper(base);
  d::KrigingPolicy sequential(seq);
  for (const auto& c : seed_grid()) {
    (void)paper.evaluate(c, sim);
    (void)sequential.evaluate(c, sim);
  }
  std::vector<d::Config> probes;
  for (int x = 0; x <= 4; ++x)
    for (int y = 0; y <= 4; ++y)
      if ((x + y) % 2 == 1) probes.push_back({x, y});
  for (const auto& c : probes) {
    (void)paper.evaluate(c, sim);
    (void)sequential.evaluate(c, sim);
  }
  EXPECT_LT(sequential.stats().simulated, paper.stats().simulated);
}

}  // namespace
