#include "core/engine.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

namespace {

namespace c = ace::core;
namespace d = ace::dse;

double smooth_surface(const d::Config& w) {
  return 5.0 * w[0] + 3.0 * w[1];
}

d::PolicyOptions options_with(int distance) {
  d::PolicyOptions o;
  o.distance = distance;
  o.min_fit_points = 8;
  return o;
}

TEST(Engine, NullSimulatorThrows) {
  EXPECT_THROW(c::ErrorEvaluationEngine(nullptr, {},
                                        d::MetricKind::kAccuracyDb),
               std::invalid_argument);
}

TEST(Engine, MemoizesRepeatedConfigurations) {
  std::size_t calls = 0;
  c::ErrorEvaluationEngine engine(
      [&](const d::Config& w) {
        ++calls;
        return smooth_surface(w);
      },
      options_with(2), d::MetricKind::kAccuracyDb);
  const auto a = engine.evaluate({4, 4});
  const auto b = engine.evaluate({4, 4});
  EXPECT_EQ(calls, 1u);
  EXPECT_EQ(engine.cache_hits(), 1u);
  EXPECT_DOUBLE_EQ(a.value, b.value);
  EXPECT_DOUBLE_EQ(a.value, 32.0);
}

TEST(Engine, EvaluatorCallableMatchesEvaluate) {
  c::ErrorEvaluationEngine engine(smooth_surface, options_with(2),
                                  d::MetricKind::kAccuracyDb);
  auto eval = engine.as_evaluator();
  EXPECT_DOUBLE_EQ(eval({3, 5}), engine.evaluate({3, 5}).value);
}

TEST(Engine, StatsAccumulateAcrossEvaluations) {
  c::ErrorEvaluationEngine engine(smooth_surface, options_with(3),
                                  d::MetricKind::kAccuracyDb);
  for (int x = 0; x < 4; ++x)
    for (int y = 0; y < 4; ++y) (void)engine.evaluate({x, y});
  const auto& stats = engine.stats();
  EXPECT_EQ(stats.total, 16u);
  EXPECT_EQ(stats.simulated + stats.interpolated, 16u);
  EXPECT_GT(stats.interpolated, 0u);  // Dense cluster: kriging fires.
  EXPECT_EQ(engine.metric_kind(), d::MetricKind::kAccuracyDb);
}

TEST(Engine, OptimizeWordLengthsMeetsConstraint) {
  // λ(w) = 5w0 + 3w1: constraint 100 reachable within [2, 16]².
  c::ErrorEvaluationEngine engine(smooth_surface, options_with(2),
                                  d::MetricKind::kAccuracyDb);
  d::MinPlusOneOptions o;
  o.nv = 2;
  o.w_max = 16;
  o.w_min = 2;
  o.lambda_min = 100.0;
  const auto result = engine.optimize_word_lengths(o);
  EXPECT_TRUE(result.constraint_met);
  // Exact surface check at the claimed solution.
  EXPECT_GE(smooth_surface(result.w_res), 100.0 - 5.0);
}

TEST(Engine, AnalyzeSensitivityThroughEngine) {
  auto quality = [](const d::Config& levels) {
    double damage = 0.0;
    for (int e : levels) damage += std::ldexp(1.0, -e);
    return 1.0 - damage;
  };
  c::ErrorEvaluationEngine engine(quality, options_with(2),
                                  d::MetricKind::kQualityRate);
  d::SensitivityOptions o;
  o.nv = 2;
  o.level_max = 10;
  o.level_min = 0;
  o.lambda_min = 0.9;
  const auto result = engine.analyze_sensitivity(o);
  EXPECT_TRUE(result.feasible);
  EXPECT_GE(result.final_lambda, 0.85);  // Kriged estimates may wobble a bit.
}

}  // namespace
