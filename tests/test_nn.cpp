#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

#include "metrics/classification.hpp"
#include "nn/dataset.hpp"
#include "nn/injection.hpp"
#include "nn/layers.hpp"
#include "nn/squeezenet.hpp"
#include "nn/tensor.hpp"
#include "util/rng.hpp"

namespace {

namespace nn = ace::nn;

TEST(Tensor, ShapeAndAccess) {
  EXPECT_THROW(nn::Tensor(0, 2, 2), std::invalid_argument);
  nn::Tensor t(2, 3, 4, 1.5);
  EXPECT_EQ(t.channels(), 2u);
  EXPECT_EQ(t.height(), 3u);
  EXPECT_EQ(t.width(), 4u);
  EXPECT_EQ(t.size(), 24u);
  EXPECT_DOUBLE_EQ(t.at(1, 2, 3), 1.5);
  t.at(0, 0, 0) = -2.0;
  EXPECT_DOUBLE_EQ(t.at(0, 0, 0), -2.0);
  EXPECT_THROW((void)t.at(2, 0, 0), std::out_of_range);
  EXPECT_THROW((void)t.at(0, 3, 0), std::out_of_range);
  EXPECT_THROW((void)t.at(0, 0, 4), std::out_of_range);
}

TEST(Conv2d, Validation) {
  EXPECT_THROW(nn::Conv2d(0, 1, 3), std::invalid_argument);
  EXPECT_THROW(nn::Conv2d(1, 0, 3), std::invalid_argument);
  EXPECT_THROW(nn::Conv2d(1, 1, 2), std::invalid_argument);
  EXPECT_THROW(nn::Conv2d(1, 1, 0), std::invalid_argument);
}

TEST(Conv2d, IdentityKernelCopiesInput) {
  nn::Conv2d conv(1, 1, 3);
  conv.weights().assign(9, 0.0);
  conv.weights()[4] = 1.0;  // Center tap.
  conv.bias()[0] = 0.0;
  nn::Tensor in(1, 4, 4);
  for (std::size_t y = 0; y < 4; ++y)
    for (std::size_t x = 0; x < 4; ++x)
      in.at(0, y, x) = static_cast<double>(y * 4 + x);
  const auto out = conv.forward(in);
  for (std::size_t y = 0; y < 4; ++y)
    for (std::size_t x = 0; x < 4; ++x)
      EXPECT_DOUBLE_EQ(out.at(0, y, x), in.at(0, y, x));
}

TEST(Conv2d, HandComputedSumKernelWithZeroPadding) {
  nn::Conv2d conv(1, 1, 3);
  conv.weights().assign(9, 1.0);  // Box sum.
  nn::Tensor in(1, 3, 3, 1.0);
  const auto out = conv.forward(in);
  EXPECT_DOUBLE_EQ(out.at(0, 1, 1), 9.0);  // Full 3x3 neighbourhood.
  EXPECT_DOUBLE_EQ(out.at(0, 0, 0), 4.0);  // Corner: zero padding.
  EXPECT_DOUBLE_EQ(out.at(0, 0, 1), 6.0);  // Edge.
}

TEST(Conv2d, BiasIsAdded) {
  nn::Conv2d conv(1, 2, 1);
  conv.weights() = {2.0, -1.0};
  conv.bias() = {0.5, 1.0};
  nn::Tensor in(1, 1, 1, 3.0);
  const auto out = conv.forward(in);
  EXPECT_DOUBLE_EQ(out.at(0, 0, 0), 6.5);
  EXPECT_DOUBLE_EQ(out.at(1, 0, 0), -2.0);
}

TEST(Conv2d, ChannelMismatchThrows) {
  nn::Conv2d conv(2, 1, 3);
  nn::Tensor in(1, 4, 4);
  EXPECT_THROW((void)conv.forward(in), std::invalid_argument);
}

TEST(Layers, ReluClampsNegatives) {
  nn::Tensor t(1, 1, 3);
  t.at(0, 0, 0) = -1.0;
  t.at(0, 0, 1) = 0.0;
  t.at(0, 0, 2) = 2.5;
  nn::relu_inplace(t);
  EXPECT_DOUBLE_EQ(t.at(0, 0, 0), 0.0);
  EXPECT_DOUBLE_EQ(t.at(0, 0, 1), 0.0);
  EXPECT_DOUBLE_EQ(t.at(0, 0, 2), 2.5);
}

TEST(Layers, MaxPool2TakesBlockMaxima) {
  nn::Tensor t(1, 2, 4);
  const double vals[2][4] = {{1.0, 2.0, 5.0, 0.0}, {3.0, 0.0, -1.0, 6.0}};
  for (std::size_t y = 0; y < 2; ++y)
    for (std::size_t x = 0; x < 4; ++x) t.at(0, y, x) = vals[y][x];
  const auto out = nn::max_pool2(t);
  EXPECT_EQ(out.height(), 1u);
  EXPECT_EQ(out.width(), 2u);
  EXPECT_DOUBLE_EQ(out.at(0, 0, 0), 3.0);
  EXPECT_DOUBLE_EQ(out.at(0, 0, 1), 6.0);
  nn::Tensor odd(1, 3, 2);
  EXPECT_THROW((void)nn::max_pool2(odd), std::invalid_argument);
}

TEST(Layers, GlobalAvgPool) {
  nn::Tensor t(2, 2, 2);
  for (std::size_t i = 0; i < 4; ++i) t.at(0, i / 2, i % 2) = 1.0;
  t.at(1, 0, 0) = 4.0;  // Others zero.
  const auto pooled = nn::global_avg_pool(t);
  ASSERT_EQ(pooled.size(), 2u);
  EXPECT_DOUBLE_EQ(pooled[0], 1.0);
  EXPECT_DOUBLE_EQ(pooled[1], 1.0);
}

TEST(Layers, SoftmaxIsNormalizedAndOrderPreserving) {
  const auto p = nn::softmax({1.0, 2.0, 3.0});
  EXPECT_NEAR(p[0] + p[1] + p[2], 1.0, 1e-12);
  EXPECT_LT(p[0], p[1]);
  EXPECT_LT(p[1], p[2]);
  // Large logits stay finite.
  const auto q = nn::softmax({1000.0, 1001.0});
  EXPECT_TRUE(std::isfinite(q[0]));
  EXPECT_NEAR(q[0] + q[1], 1.0, 1e-12);
  EXPECT_THROW((void)nn::softmax({}), std::invalid_argument);
}

TEST(Layers, ConcatChannels) {
  nn::Tensor a(1, 2, 2, 1.0);
  nn::Tensor b(2, 2, 2, 2.0);
  const auto c = nn::concat_channels(a, b);
  EXPECT_EQ(c.channels(), 3u);
  EXPECT_DOUBLE_EQ(c.at(0, 0, 0), 1.0);
  EXPECT_DOUBLE_EQ(c.at(1, 1, 1), 2.0);
  EXPECT_DOUBLE_EQ(c.at(2, 0, 1), 2.0);
  nn::Tensor bad(1, 3, 2);
  EXPECT_THROW((void)nn::concat_channels(a, bad), std::invalid_argument);
}

TEST(FireModule, OutputChannelsAreTwiceExpand) {
  ace::util::Rng rng(30);
  nn::FireModule fire(8, 2, 4);
  fire.init_weights(rng);
  EXPECT_EQ(fire.out_channels(), 8u);
  nn::Tensor in(8, 4, 4, 0.1);
  const auto out = fire.forward(in);
  EXPECT_EQ(out.channels(), 8u);
  EXPECT_EQ(out.height(), 4u);
  // ReLU output is non-negative.
  for (double v : out.flat()) EXPECT_GE(v, 0.0);
}

TEST(SqueezeNetLike, StructureAndDeterminism) {
  ace::util::Rng rng(31);
  nn::SqueezeNetLike net(10, rng);
  EXPECT_EQ(net.classes(), 10u);
  EXPECT_EQ(net.site_sizes().size(), nn::SqueezeNetLike::kSites);
  // Site 0 is conv1's 8x16x16 output.
  EXPECT_EQ(net.site_sizes()[0], 8u * 16u * 16u);
  // Last site is the classifier conv output (10 channels at 2x2).
  EXPECT_EQ(net.site_sizes()[9], 10u * 2u * 2u);
  EXPECT_THROW(nn::SqueezeNetLike(1, rng), std::invalid_argument);

  nn::Tensor img(1, 16, 16, 0.3);
  const auto l1 = net.forward(img);
  const auto l2 = net.forward(img);
  EXPECT_EQ(l1, l2);
  EXPECT_EQ(l1.size(), 10u);
}

TEST(SqueezeNetLike, RejectsWrongInputShape) {
  ace::util::Rng rng(32);
  nn::SqueezeNetLike net(4, rng);
  nn::Tensor bad(1, 8, 8);
  EXPECT_THROW((void)net.forward(bad), std::invalid_argument);
  nn::Tensor bad2(3, 16, 16);
  EXPECT_THROW((void)net.forward(bad2), std::invalid_argument);
}

TEST(Injection, PlanFromPowersAndValidation) {
  const auto plan = nn::InjectionPlan::from_powers({4.0, 0.0, 0.25});
  EXPECT_DOUBLE_EQ(plan.stddev[0], 2.0);
  EXPECT_DOUBLE_EQ(plan.stddev[1], 0.0);
  EXPECT_DOUBLE_EQ(plan.stddev[2], 0.5);
  EXPECT_THROW((void)nn::InjectionPlan::from_powers({-1.0}),
               std::invalid_argument);
}

TEST(Injection, PowerFromLevelHalvesPerLevel) {
  EXPECT_DOUBLE_EQ(nn::power_from_level(0, 2.0), 2.0);
  EXPECT_DOUBLE_EQ(nn::power_from_level(1, 2.0), 1.0);
  EXPECT_DOUBLE_EQ(nn::power_from_level(10, 1.0), std::ldexp(1.0, -10));
  EXPECT_THROW((void)nn::power_from_level(-1), std::invalid_argument);
}

TEST(Injection, FrozenNoiseMatchesSiteSizes) {
  ace::util::Rng rng(33);
  const auto noise = nn::make_frozen_noise(rng, {4, 9});
  ASSERT_EQ(noise.per_site.size(), 2u);
  EXPECT_EQ(noise.per_site[0].size(), 4u);
  EXPECT_EQ(noise.per_site[1].size(), 9u);
}

TEST(SqueezeNetLike, ZeroNoiseInjectionEqualsCleanForward) {
  ace::util::Rng rng(34);
  nn::SqueezeNetLike net(6, rng);
  auto noise_rng = rng.fork();
  const auto noise = nn::make_frozen_noise(noise_rng, net.site_sizes());
  const auto plan =
      nn::InjectionPlan::from_powers(std::vector<double>(10, 0.0));
  nn::Tensor img(1, 16, 16, 0.4);
  const auto clean = net.forward(img);
  const auto injected = net.forward_injected(img, plan, noise);
  for (std::size_t i = 0; i < clean.size(); ++i)
    EXPECT_DOUBLE_EQ(clean[i], injected[i]);
}

TEST(SqueezeNetLike, InjectionValidation) {
  ace::util::Rng rng(35);
  nn::SqueezeNetLike net(4, rng);
  auto noise_rng = rng.fork();
  const auto noise = nn::make_frozen_noise(noise_rng, net.site_sizes());
  nn::Tensor img(1, 16, 16, 0.4);
  nn::InjectionPlan bad_plan;
  bad_plan.stddev.assign(5, 0.0);
  EXPECT_THROW((void)net.forward_injected(img, bad_plan, noise),
               std::invalid_argument);
  nn::FrozenNoise bad_noise;
  bad_noise.per_site.assign(10, {});
  const auto plan =
      nn::InjectionPlan::from_powers(std::vector<double>(10, 1.0));
  EXPECT_THROW((void)net.forward_injected(img, plan, bad_noise),
               std::invalid_argument);
}

TEST(SqueezeNetLike, LargeNoiseChangesPredictions) {
  ace::util::Rng rng(36);
  nn::SqueezeNetLike net(10, rng);
  auto data_rng = rng.fork();
  auto noise_rng = rng.fork();
  nn::SyntheticDataset data(40, 10, data_rng);
  std::vector<nn::FrozenNoise> noise;
  for (std::size_t i = 0; i < data.size(); ++i)
    noise.push_back(nn::make_frozen_noise(noise_rng, net.site_sizes()));

  auto agreement_at = [&](double power) {
    const auto plan =
        nn::InjectionPlan::from_powers(std::vector<double>(10, power));
    std::vector<int> clean_labels, noisy_labels;
    for (std::size_t i = 0; i < data.size(); ++i) {
      clean_labels.push_back(static_cast<int>(
          ace::metrics::argmax(net.forward(data.image(i)))));
      noisy_labels.push_back(static_cast<int>(ace::metrics::argmax(
          net.forward_injected(data.image(i), plan, noise[i]))));
    }
    return ace::metrics::classification_agreement(noisy_labels, clean_labels);
  };

  EXPECT_DOUBLE_EQ(agreement_at(0.0), 1.0);
  const double tiny = agreement_at(1e-8);
  const double huge = agreement_at(100.0);
  EXPECT_GT(tiny, 0.9);
  EXPECT_LT(huge, tiny);
}

TEST(SyntheticDataset, DeterministicAndClassStructured) {
  ace::util::Rng a(37), b(37);
  nn::SyntheticDataset d1(20, 5, a);
  nn::SyntheticDataset d2(20, 5, b);
  EXPECT_EQ(d1.size(), 20u);
  EXPECT_EQ(d1.classes(), 5u);
  for (std::size_t i = 0; i < 20; ++i) {
    EXPECT_EQ(d1.source_class(i), i % 5);
    EXPECT_EQ(d1.image(i).flat(), d2.image(i).flat());
  }
  EXPECT_THROW(nn::SyntheticDataset(0, 5, a), std::invalid_argument);
  EXPECT_THROW(nn::SyntheticDataset(5, 0, a), std::invalid_argument);
}

}  // namespace
