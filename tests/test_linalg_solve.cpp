#include "linalg/solve.hpp"

#include <gtest/gtest.h>

#include "linalg/matrix.hpp"
#include "linalg/vector.hpp"

namespace {

using ace::linalg::Matrix;
using ace::linalg::robust_solve;
using ace::linalg::SolveReport;
using ace::linalg::Vector;

TEST(RobustSolve, PlainSolveNeedsNoRegularization) {
  Matrix a{{2.0, 0.0}, {0.0, 4.0}};
  SolveReport report;
  const auto x = robust_solve(a, Vector{2.0, 8.0}, report);
  ASSERT_TRUE(x.has_value());
  EXPECT_TRUE(report.ok);
  EXPECT_FALSE(report.regularized);
  EXPECT_GT(report.rcond, 0.0);
  EXPECT_NEAR((*x)[0], 1.0, 1e-12);
  EXPECT_NEAR((*x)[1], 2.0, 1e-12);
}

TEST(RobustSolve, RidgeRescuesSingularSystem) {
  // Rank-1 matrix: plain LU fails, ridge succeeds.
  Matrix a{{1.0, 1.0}, {1.0, 1.0}};
  SolveReport report;
  const auto x = robust_solve(a, Vector{2.0, 2.0}, report);
  ASSERT_TRUE(x.has_value());
  EXPECT_TRUE(report.regularized);
  EXPECT_GT(report.ridge, 0.0);
  // Regularized solution distributes the weight evenly.
  EXPECT_NEAR((*x)[0], (*x)[1], 1e-9);
  EXPECT_NEAR((*x)[0] + (*x)[1], 2.0, 1e-4);
}

TEST(RobustSolve, BorderRowsAreNotRegularized) {
  // Kriging-like bordered system with an all-zero core: the Lagrange border
  // must stay intact so Σ weights = 1 is still enforced.
  Matrix a{{0.0, 0.0, 1.0}, {0.0, 0.0, 1.0}, {1.0, 1.0, 0.0}};
  Vector b{0.0, 0.0, 1.0};
  SolveReport report;
  const auto x = robust_solve(a, b, report, /*border=*/1);
  ASSERT_TRUE(x.has_value());
  EXPECT_TRUE(report.regularized);
  // Weights must sum to ~1 (the border constraint).
  EXPECT_NEAR((*x)[0] + (*x)[1], 1.0, 1e-6);
  // Symmetric system: equal weights.
  EXPECT_NEAR((*x)[0], 0.5, 1e-6);
}

TEST(RobustSolve, GivesUpOnHopelessSystem) {
  // A zero matrix with border covering everything cannot be regularized.
  Matrix a(2, 2, 0.0);
  SolveReport report;
  const auto x = robust_solve(a, Vector{1.0, 1.0}, report, /*border=*/2);
  EXPECT_FALSE(x.has_value());
  EXPECT_FALSE(report.ok);
}

TEST(RobustSolve, ReportsRidgeMagnitudeScaledToMatrix) {
  Matrix a{{100.0, 100.0}, {100.0, 100.0}};
  SolveReport report;
  const auto x = robust_solve(a, Vector{200.0, 200.0}, report);
  ASSERT_TRUE(x.has_value());
  EXPECT_TRUE(report.regularized);
  EXPECT_GE(report.ridge, 1e-10 * 100.0);  // Scaled by max |a|.
}

}  // namespace
