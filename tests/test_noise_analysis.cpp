#include "signal/noise_analysis.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

#include "metrics/noise_power.hpp"
#include "signal/generator.hpp"
#include "signal/iir.hpp"
#include "util/rng.hpp"

namespace {

namespace s = ace::signal;

TEST(TailEnergyGain, Validation) {
  const auto sections = s::design_butterworth_lowpass(4, 0.2);
  EXPECT_THROW((void)s::tail_energy_gain(sections, 3), std::invalid_argument);
  EXPECT_THROW((void)s::tail_energy_gain(sections, 0, 0),
               std::invalid_argument);
}

TEST(TailEnergyGain, DirectPathIsUnity) {
  const auto sections = s::design_butterworth_lowpass(4, 0.2);
  EXPECT_DOUBLE_EQ(s::tail_energy_gain(sections, sections.size()), 1.0);
}

TEST(TailEnergyGain, LongerTailsShapeMore) {
  // Low-pass tails have energy gain < 1 for broadband (white) inputs in
  // proportion to their bandwidth; each extra section shrinks the gain.
  const auto sections = s::design_butterworth_lowpass(8, 0.12);
  double previous = s::tail_energy_gain(sections, sections.size());
  for (std::size_t first = sections.size(); first-- > 0;) {
    const double gain = s::tail_energy_gain(sections, first);
    EXPECT_GT(gain, 0.0);
    EXPECT_LE(gain, previous + 1e-9) << "tail from section " << first;
    previous = gain;
  }
}

TEST(TailEnergyGain, MatchesHandComputedOnePole) {
  // y[n] = x[n] + a·y[n−1]: h = a^n, Σ h² = 1 / (1 − a²).
  s::BiquadCoefficients c;
  c.b0 = 1.0;
  c.a1 = -0.5;  // a = 0.5 in the recursion above.
  const double gain = s::tail_energy_gain({c}, 0, 4096);
  EXPECT_NEAR(gain, 1.0 / (1.0 - 0.25), 1e-9);
}

TEST(PredictIirNoise, Validation) {
  const auto sections = s::design_butterworth_lowpass(4, 0.2);
  EXPECT_THROW(
      (void)s::predict_iir_noise(sections, {10, 10}, {1, 1}, 1),
      std::invalid_argument);
  EXPECT_THROW(
      (void)s::predict_iir_noise(sections, {10, 10, 10}, {1}, 1),
      std::invalid_argument);
}

TEST(PredictIirNoise, MonotoneInEveryWordLength) {
  const auto sections = s::design_butterworth_lowpass(8, 0.12);
  const std::vector<int> accum_iwl = {1, 1, 1, 1};
  const std::vector<int> base(5, 12);
  const double p0 = s::predict_iir_noise(sections, base, accum_iwl, 1);
  for (std::size_t i = 0; i < 5; ++i) {
    auto wider = base;
    wider[i] += 2;
    EXPECT_LT(s::predict_iir_noise(sections, wider, accum_iwl, 1), p0)
        << "variable " << i;
  }
}

TEST(PredictIirNoise, WithinTwoBitsOfBitTrueSimulation) {
  // The white-source model should land within ~2 equivalent bits of the
  // bit-true simulation at moderate word lengths (correlated-source and
  // dead-band effects account for the gap — the reason the paper prefers
  // simulation-based evaluation).
  const s::IirCascade iir(s::design_butterworth_lowpass(8, 0.12));
  ace::util::Rng rng(91);
  const auto input = s::noisy_multitone(rng, 2048);
  const s::QuantizedIirCascade q(iir, input);
  const auto reference = iir.filter(input);

  for (const int width : {10, 12, 14}) {
    const std::vector<int> w(5, width);
    const double simulated =
        ace::metrics::noise_power(q.filter(input, w), reference);
    const double predicted = s::predict_iir_noise(
        iir.sections(), w, q.accumulator_integer_bits(),
        q.data_integer_bits());
    const double gap_bits = std::abs(std::log2(predicted / simulated));
    EXPECT_LT(gap_bits, 2.0) << "width " << width << ": predicted "
                             << predicted << " simulated " << simulated;
  }
}

}  // namespace
