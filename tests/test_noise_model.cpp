#include "fixedpoint/noise_model.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

#include "metrics/noise_power.hpp"
#include "signal/fir.hpp"
#include "signal/generator.hpp"
#include "util/rng.hpp"

namespace {

namespace fp = ace::fixedpoint;

TEST(SourceNoisePower, MatchesTextbookFormulas) {
  const fp::Format f(10, 1);  // 8 fractional bits, q = 2^-8.
  const double q = f.step();
  EXPECT_DOUBLE_EQ(
      fp::source_noise_power(f, fp::RoundingMode::kRoundNearest),
      q * q / 12.0);
  EXPECT_DOUBLE_EQ(
      fp::source_noise_power(f, fp::RoundingMode::kRoundConvergent),
      q * q / 12.0);
  EXPECT_DOUBLE_EQ(fp::source_noise_power(f, fp::RoundingMode::kTruncate),
                   q * q / 3.0);
}

TEST(PredictOutputNoise, SumsIndependentSources) {
  const fp::Format f(10, 0);
  const double unit = f.rounding_noise_power();
  std::vector<fp::NoiseSource> sources = {
      {f, fp::RoundingMode::kRoundConvergent, 4.0, 1.0},
      {f, fp::RoundingMode::kRoundConvergent, 1.0, 2.0},
  };
  EXPECT_DOUBLE_EQ(fp::predict_output_noise(sources), unit * 6.0);
  sources[0].injections_per_output = -1.0;
  EXPECT_THROW((void)fp::predict_output_noise(sources),
               std::invalid_argument);
}

TEST(PredictFirNoise, Validation) {
  EXPECT_THROW((void)fp::predict_fir_noise(10, 0, 12, 1, 0),
               std::invalid_argument);
}

TEST(PredictFirNoise, MonotoneInBothWordLengths) {
  const double base = fp::predict_fir_noise(10, 0, 12, 1, 64);
  EXPECT_LT(fp::predict_fir_noise(12, 0, 12, 1, 64), base);
  EXPECT_LT(fp::predict_fir_noise(10, 0, 14, 1, 64), base);
}

TEST(PredictFirNoise, WithinAFewDbOfBitTrueSimulation) {
  // The analytical model should land within ~6 dB (one equivalent bit)
  // of simulation in the regime where the white-noise assumptions hold
  // (moderate word lengths, away from saturation).
  ace::util::Rng rng(50);
  const auto input = ace::signal::noisy_multitone(rng, 2048);
  const ace::signal::FirFilter fir(ace::signal::design_lowpass_fir(64, 0.18));
  const ace::signal::QuantizedFirFilter quantized(fir);
  const auto reference = fir.filter(input);

  for (const auto [w_mpy, w_add] : {std::pair{10, 12}, std::pair{12, 12},
                                    std::pair{14, 14}, std::pair{12, 10}}) {
    const auto approx = quantized.filter(input, {w_mpy, w_add});
    const double simulated =
        ace::metrics::noise_power(approx, reference);
    const double predicted =
        fp::predict_fir_noise(w_mpy, 0, w_add, 1, 64);
    const double gap_bits = std::abs(std::log2(predicted / simulated));
    EXPECT_LT(gap_bits, 1.5) << "w = (" << w_mpy << ", " << w_add
                             << "): predicted " << predicted
                             << " simulated " << simulated;
  }
}

}  // namespace
