#include "dse/checkpoint.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <fstream>
#include <limits>
#include <string>
#include <vector>

#include "dse/scheduler.hpp"

namespace {

namespace d = ace::dse;

std::string temp_path(const std::string& name) {
  const std::string path = ::testing::TempDir() + name;
  std::remove(path.c_str());  // No stale state from earlier runs.
  return path;
}

double smooth(const d::Config& c) {
  double acc = 0.0;
  for (std::size_t i = 0; i < c.size(); ++i)
    acc += 0.5 * static_cast<double>(c[i]) +
           0.01 * static_cast<double>(c[i] * c[i]) +
           0.02 * static_cast<double>(i + 1) * static_cast<double>(c[i]);
  return acc;
}

d::PolicyOptions kriging_options() {
  d::PolicyOptions options;
  options.distance = 3;
  options.nn_min = 1;
  options.min_fit_points = 6;
  options.refit_period = 5;
  return options;
}

void expect_snapshots_equal(const d::PolicySnapshot& a,
                            const d::PolicySnapshot& b) {
  EXPECT_EQ(a.configs, b.configs);
  EXPECT_EQ(a.values, b.values);  // Bitwise: hexfloat round trip is exact.
  EXPECT_EQ(a.quarantine, b.quarantine);
  EXPECT_EQ(a.fit_events, b.fit_events);
  EXPECT_TRUE(a.stats == b.stats);
}

TEST(CheckpointFile, RoundTripIsExact) {
  d::Checkpoint ck;
  ck.optimizer = "min_plus_one";
  ck.policy.configs = {{8, 8}, {7, 8}, {8, 7}};
  // Deliberately awkward doubles: non-terminating binary fractions, huge,
  // and denormal magnitudes all survive the hexfloat round trip exactly.
  ck.policy.values = {0.1, 1.0 / 3.0, -1e300};
  ck.policy.quarantine = {{{2, 2}, d::FaultCode::kSimulatorThrow},
                          {{5, 5}, d::FaultCode::kTimeout}};
  ck.policy.fit_events = {6, 11};
  ck.policy.stats.total = 17;
  ck.policy.stats.simulated = 3;
  ck.policy.stats.interpolated = 9;
  ck.policy.stats.quarantined = 2;
  ck.policy.stats.checkpoints_written = 4;
  ck.policy.stats.neighbors_per_interpolation.add(3.0);
  ck.policy.stats.neighbors_per_interpolation.add(5.0);
  ck.min_plus.phase = 2;
  ck.min_plus.var = 3;
  ck.min_plus.w_min = {6, 6, 6};
  ck.min_plus.lambda_at_max = 5e-324;  // Smallest positive denormal.
  ck.min_plus.have_lambda_at_max = true;
  ck.min_plus.w = {7, 6, 6};
  ck.min_plus.lambda = -9.25;
  ck.min_plus.have_lambda = true;
  ck.min_plus.decisions = {0, 1};
  ck.min_plus.steps = 2;
  ck.sensitivity.started = true;
  ck.sensitivity.levels = {4, 5, 5};
  ck.sensitivity.lambda = 0.90625;
  ck.sensitivity.feasible = true;
  ck.sensitivity.decisions = {0, 0, 1, 2};
  ck.sensitivity.steps = 4;

  const std::string path = temp_path("ace_ckpt_roundtrip.txt");
  d::save_checkpoint(path, ck);
  const auto loaded = d::load_checkpoint(path);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->optimizer, ck.optimizer);
  expect_snapshots_equal(loaded->policy, ck.policy);
  EXPECT_EQ(loaded->min_plus, ck.min_plus);
  EXPECT_EQ(loaded->sensitivity, ck.sensitivity);
  std::remove(path.c_str());
}

TEST(CheckpointFile, MissingFileIsNullopt) {
  EXPECT_FALSE(
      d::load_checkpoint(temp_path("ace_ckpt_missing.txt")).has_value());
}

TEST(CheckpointFile, RejectsGarbageAndUnsupportedVersion) {
  const std::string garbage = temp_path("ace_ckpt_garbage.txt");
  {
    std::ofstream out(garbage);
    out << "hello world\n";
  }
  EXPECT_THROW((void)d::load_checkpoint(garbage), std::runtime_error);
  std::remove(garbage.c_str());

  const std::string future = temp_path("ace_ckpt_future.txt");
  {
    std::ofstream out(future);
    out << "ACE-CHECKPOINT 99\noptimizer min_plus_one\n";
  }
  EXPECT_THROW((void)d::load_checkpoint(future), std::runtime_error);
  std::remove(future.c_str());

  const std::string truncated = temp_path("ace_ckpt_truncated.txt");
  {
    std::ofstream out(truncated);
    out << "ACE-CHECKPOINT 1\noptimizer min_plus_one\nstore 3 2\n";
  }
  EXPECT_THROW((void)d::load_checkpoint(truncated), std::runtime_error);
  std::remove(truncated.c_str());
}

// Hand-written fixtures in the historical formats: a version-N writer
// produced exactly these bytes, and the version-gated reader must keep
// loading them forever. The token streams below mirror put_stats() as it
// stood at each version — v1 ends after neighbors_per_interpolation, v2
// after rcond_per_solve.
constexpr const char* kCursorTail =
    "cursor_min_plus 0 0 0 0 0 0x0p+0 0x0p+0\n"
    "w_min 2 8 8\n"
    "w 2 8 8\n"
    "decisions 0\n"
    "cursor_sensitivity 0 0 0 0 0x0p+0\n"
    "levels 0\n"
    "decisions 0\n"
    "end\n";

std::string write_fixture(const std::string& name, const std::string& body) {
  const std::string path = temp_path(name);
  std::ofstream out(path);
  out << body;
  return path;
}

TEST(CheckpointFile, LoadsVersion1FixtureUnderTheGateAwarePolicy) {
  const std::string path = write_fixture(
      "ace_ckpt_v1_fixture.txt",
      std::string("ACE-CHECKPOINT 1\n"
                  "optimizer min_plus_one\n"
                  "store 2 2\n"
                  "4 4 0x1.8p+2\n"
                  "2 2 0x1p+1\n"
                  "quarantine 0 0\n"
                  "fit_events 1 2\n"
                  "stats 10 4 5 1 0 2 3 0 0 0 0 0 1 "
                  "2 0x1p+2 0x0p+0 0x1p+2 0x1p+2\n") +
      kCursorTail);
  const auto loaded = d::load_checkpoint(path);
  ASSERT_TRUE(loaded.has_value());
  const d::PolicyStats& s = loaded->policy.stats;
  // v1 fields arrive intact...
  EXPECT_EQ(s.total, 10u);
  EXPECT_EQ(s.variance_rejections, 2u);
  EXPECT_EQ(s.refits, 3u);
  EXPECT_EQ(s.neighbors_per_interpolation.count(), 2u);
  // ...and every post-v1 field holds its fresh-policy default.
  EXPECT_EQ(s.ridge_fallbacks, 0u);
  EXPECT_EQ(s.full_factorizations, 0u);
  EXPECT_EQ(s.rcond_per_solve.count(), 0u);
  EXPECT_EQ(s.loo_rejections, 0u);
  EXPECT_EQ(s.sequential_rejections, 0u);
  EXPECT_EQ(s.loo_passes, 0u);
  EXPECT_EQ(s.loo_abs_error.count(), 0u);

  // A v1 snapshot restores into today's gate-aware policy — including one
  // running an adaptive gate the v1 writer had never heard of.
  d::PolicyOptions gated = kriging_options();
  gated.gate = d::GateKind::kLooCalibrated;
  d::KrigingPolicy policy(gated);
  policy.restore(loaded->policy);
  EXPECT_EQ(policy.store().size(), 2u);
  EXPECT_EQ(policy.stats().variance_rejections, 2u);

  // Re-saving upgrades the file to the current version with the counters
  // it carried, bit-for-bit.
  d::save_checkpoint(path, *loaded);
  const auto upgraded = d::load_checkpoint(path);
  ASSERT_TRUE(upgraded.has_value());
  expect_snapshots_equal(upgraded->policy, loaded->policy);
  std::remove(path.c_str());
}

TEST(CheckpointFile, LoadsVersion2FixtureWithZeroGateCounters) {
  const std::string path = write_fixture(
      "ace_ckpt_v2_fixture.txt",
      std::string("ACE-CHECKPOINT 2\n"
                  "optimizer steepest_descent\n"
                  "store 0 0\n"
                  "quarantine 0 0\n"
                  "fit_events 0\n"
                  "stats 6 6 0 0 0 0 1 0 0 0 0 0 0 "
                  "0 0x0p+0 0x0p+0 0x0p+0 0x0p+0 "
                  "1 5 2 3 4 0x1p-1 0x0p+0 0x1p-1 0x1p-1\n") +
      kCursorTail);
  const auto loaded = d::load_checkpoint(path);
  ASSERT_TRUE(loaded.has_value());
  const d::PolicyStats& s = loaded->policy.stats;
  // The v2 tail arrives intact...
  EXPECT_EQ(s.ridge_fallbacks, 1u);
  EXPECT_EQ(s.full_factorizations, 5u);
  EXPECT_EQ(s.factor_cache_hits, 2u);
  EXPECT_EQ(s.factor_extends, 3u);
  EXPECT_EQ(s.rcond_per_solve.count(), 4u);
  // ...and the v3 gate counters default to a fresh policy's.
  EXPECT_EQ(s.loo_rejections, 0u);
  EXPECT_EQ(s.sequential_rejections, 0u);
  EXPECT_EQ(s.loo_passes, 0u);
  EXPECT_EQ(s.loo_abs_error.count(), 0u);
  std::remove(path.c_str());
}

TEST(CheckpointFile, Version3RoundTripsGateCountersExactly) {
  d::Checkpoint ck;
  ck.optimizer = "min_plus_one";
  ck.policy.stats.variance_rejections = 4;
  ck.policy.stats.loo_rejections = 7;
  ck.policy.stats.sequential_rejections = 3;
  ck.policy.stats.loo_passes = 9;
  ck.policy.stats.loo_abs_error.add(0.1);
  ck.policy.stats.loo_abs_error.add(1.0 / 3.0);

  const std::string path = temp_path("ace_ckpt_v3_gates.txt");
  d::save_checkpoint(path, ck);
  {
    std::ifstream in(path);
    std::string magic;
    int version = 0;
    in >> magic >> version;
    EXPECT_EQ(magic, "ACE-CHECKPOINT");
    EXPECT_EQ(version, 3);
  }
  const auto loaded = d::load_checkpoint(path);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_TRUE(loaded->policy.stats == ck.policy.stats);
  std::remove(path.c_str());
}

TEST(PolicySnapshot, RestoreContinuesBitIdentically) {
  // Drive a policy through a workload rich enough to fit and refit the
  // variogram, snapshot halfway, restore into a fresh policy, and continue
  // both on the same tail: every outcome and statistic must match exactly.
  const d::SimulatorFn sim = smooth;
  std::vector<d::Config> work;
  for (int x = 0; x < 8; ++x)
    for (int y = 0; y < 8; ++y) work.push_back({(x * 3 + y) % 8, y});

  d::KrigingPolicy original(kriging_options());
  const std::size_t half = work.size() / 2;
  for (std::size_t i = 0; i < half; ++i)
    (void)original.evaluate(work[i], sim);

  d::KrigingPolicy resumed(kriging_options());
  resumed.restore(original.snapshot());
  expect_snapshots_equal(resumed.snapshot(), original.snapshot());

  for (std::size_t i = half; i < work.size(); ++i) {
    const d::EvalOutcome a = original.evaluate(work[i], sim);
    const d::EvalOutcome b = resumed.evaluate(work[i], sim);
    EXPECT_EQ(a, b) << "diverged at work item " << i;
  }
  EXPECT_TRUE(original.stats() == resumed.stats());
  expect_snapshots_equal(resumed.snapshot(), original.snapshot());
}

// A configuration can legitimately appear in both the quarantine list and
// the store (it faulted once, then a later clean result lifted the
// quarantine). restore() must replay the quarantine *before* the adds so
// the lift happens exactly as it did live: active quarantine gone, audit
// log entry kept, and the next evaluation served from the store.
TEST(PolicySnapshot, RestoreReplaysQuarantineBeforeAddsAndLifts) {
  d::PolicySnapshot snapshot;
  snapshot.configs = {{4, 4}, {2, 2}, {5, 4}};  // {2,2} was lifted.
  snapshot.values = {smooth({4, 4}), smooth({2, 2}), smooth({5, 4})};
  snapshot.quarantine = {{{2, 2}, d::FaultCode::kSimulatorThrow},
                         {{9, 9}, d::FaultCode::kTimeout}};
  snapshot.stats.total = 5;
  snapshot.stats.simulated = 3;
  snapshot.stats.quarantined = 2;

  d::KrigingPolicy policy(kriging_options());
  policy.restore(snapshot);

  // {2,2}'s quarantine was lifted by its add; {9,9}'s is still active.
  EXPECT_FALSE(policy.store().quarantined({2, 2}).has_value());
  ASSERT_TRUE(policy.store().quarantined({9, 9}).has_value());
  EXPECT_EQ(*policy.store().quarantined({9, 9}), d::FaultCode::kTimeout);
  // The audit log keeps both events.
  EXPECT_EQ(policy.store().quarantine_count(), 2u);

  // A lifted configuration is healthy support: evaluating it is a store
  // hit, not a re-simulation (the simulator here would fail the test).
  std::size_t simulator_calls = 0;
  const d::EvalOutcome outcome =
      policy.evaluate({2, 2}, [&simulator_calls](const d::Config& c) {
        ++simulator_calls;
        return smooth(c);
      });
  EXPECT_EQ(simulator_calls, 0u);
  EXPECT_DOUBLE_EQ(outcome.value, smooth({2, 2}));

  // And the re-snapshot reproduces the original lists bit-for-bit.
  const d::PolicySnapshot again = policy.snapshot();
  EXPECT_EQ(again.configs, snapshot.configs);
  EXPECT_EQ(again.values, snapshot.values);
  EXPECT_EQ(again.quarantine, snapshot.quarantine);
}

TEST(PolicySnapshot, RestoreRequiresFreshPolicy) {
  d::KrigingPolicy used(kriging_options());
  (void)used.evaluate({1, 1}, smooth);
  const d::PolicySnapshot snap = used.snapshot();
  EXPECT_THROW(used.restore(snap), std::logic_error);
}

TEST(CheckpointedRuns, KilledMinPlusOneResumesBitIdentically) {
  d::MinPlusOneOptions mpo;
  mpo.nv = 3;
  mpo.w_max = 8;
  mpo.w_min = 2;
  mpo.lambda_min = 5.5;
  const d::SimulatorFn sim = smooth;

  // Uninterrupted reference run.
  const std::string ref_path = temp_path("ace_ckpt_mp_ref.txt");
  d::KrigingPolicy reference(kriging_options());
  const d::MinPlusOneResult expected =
      d::checkpointed_min_plus_one(reference, sim, mpo, {ref_path, 1});
  ASSERT_TRUE(d::load_checkpoint(ref_path).has_value());

  // Kill after each possible number of steps; resume must reconverge.
  for (std::size_t kill = 1; kill <= 5; ++kill) {
    const std::string path =
        temp_path("ace_ckpt_mp_kill" + std::to_string(kill) + ".txt");

    d::KrigingPolicy before(kriging_options());
    (void)d::checkpointed_min_plus_one(before, sim, mpo, {path, 1, kill});
    const auto mid = d::load_checkpoint(path);
    ASSERT_TRUE(mid.has_value());

    d::KrigingPolicy after(kriging_options());
    const d::MinPlusOneResult resumed =
        d::checkpointed_min_plus_one(after, sim, mpo, {path, 1});

    EXPECT_EQ(resumed.w_min, expected.w_min) << "kill=" << kill;
    EXPECT_EQ(resumed.w_res, expected.w_res) << "kill=" << kill;
    EXPECT_EQ(resumed.decisions, expected.decisions) << "kill=" << kill;
    EXPECT_DOUBLE_EQ(resumed.final_lambda, expected.final_lambda);
    EXPECT_EQ(resumed.constraint_met, expected.constraint_met);
    // The whole policy state — store, quarantine, fit history, statistics
    // (including checkpoints_written) — matches the uninterrupted run.
    expect_snapshots_equal(after.snapshot(), reference.snapshot());
    std::remove(path.c_str());
  }
  std::remove(ref_path.c_str());
}

TEST(CheckpointedRuns, KilledSteepestDescentResumesBitIdentically) {
  d::SensitivityOptions so;
  so.nv = 3;
  so.level_max = 8;
  so.level_min = 0;
  so.lambda_min = 0.9;
  // Quality in (0, 1]: relaxing a level doubles its noise contribution.
  const d::SimulatorFn sim = [](const d::Config& c) {
    double noise = 0.0;
    for (std::size_t i = 0; i < c.size(); ++i)
      noise += (1.0 + 0.01 * static_cast<double>(i)) *
               std::pow(2.0, -static_cast<double>(c[i]));
    return 1.0 - noise;
  };

  const std::string ref_path = temp_path("ace_ckpt_sd_ref.txt");
  d::KrigingPolicy reference(kriging_options());
  const d::SensitivityResult expected =
      d::checkpointed_steepest_descent(reference, sim, so, {ref_path, 1});
  EXPECT_TRUE(expected.feasible);
  EXPECT_FALSE(expected.decisions.empty());

  for (const std::size_t kill : {1u, 3u, 6u}) {
    const std::string path =
        temp_path("ace_ckpt_sd_kill" + std::to_string(kill) + ".txt");
    d::KrigingPolicy before(kriging_options());
    (void)d::checkpointed_steepest_descent(before, sim, so, {path, 1, kill});

    d::KrigingPolicy after(kriging_options());
    const d::SensitivityResult resumed =
        d::checkpointed_steepest_descent(after, sim, so, {path, 1});

    EXPECT_EQ(resumed.levels, expected.levels) << "kill=" << kill;
    EXPECT_EQ(resumed.decisions, expected.decisions) << "kill=" << kill;
    EXPECT_DOUBLE_EQ(resumed.final_lambda, expected.final_lambda);
    EXPECT_EQ(resumed.feasible, expected.feasible);
    expect_snapshots_equal(after.snapshot(), reference.snapshot());
    std::remove(path.c_str());
  }
  std::remove(ref_path.c_str());
}

TEST(CheckpointedRuns, RerunAfterCompletionIsAnIdleResume) {
  d::MinPlusOneOptions mpo;
  mpo.nv = 2;
  mpo.w_max = 6;
  mpo.w_min = 2;
  mpo.lambda_min = 3.0;
  std::size_t sim_calls = 0;
  const d::SimulatorFn sim = [&sim_calls](const d::Config& c) {
    ++sim_calls;
    return smooth(c);
  };
  const std::string path = temp_path("ace_ckpt_idem.txt");

  d::KrigingPolicy first(kriging_options());
  const d::MinPlusOneResult res =
      d::checkpointed_min_plus_one(first, sim, mpo, {path, 1});
  const std::size_t calls_after_first = sim_calls;

  // The cursor on disk is finished: a rerun restores the policy, runs no
  // steps, simulates nothing, and reproduces the result.
  d::KrigingPolicy second(kriging_options());
  const d::MinPlusOneResult rerun =
      d::checkpointed_min_plus_one(second, sim, mpo, {path, 1});
  EXPECT_EQ(sim_calls, calls_after_first);
  EXPECT_EQ(rerun.w_res, res.w_res);
  EXPECT_EQ(rerun.decisions, res.decisions);
  EXPECT_TRUE(first.stats() == second.stats());
  std::remove(path.c_str());
}

TEST(CheckpointedRuns, OptimizerMismatchIsRejected) {
  d::MinPlusOneOptions mpo;
  mpo.nv = 2;
  mpo.w_max = 4;
  mpo.w_min = 2;
  mpo.lambda_min = 2.0;
  const std::string path = temp_path("ace_ckpt_mismatch.txt");
  d::KrigingPolicy policy(kriging_options());
  (void)d::checkpointed_min_plus_one(policy, smooth, mpo, {path, 1});

  d::SensitivityOptions so;
  so.nv = 2;
  d::KrigingPolicy other(kriging_options());
  EXPECT_THROW((void)d::checkpointed_steepest_descent(other, smooth, so,
                                                      {path, 1}),
               std::runtime_error);
  std::remove(path.c_str());
}

TEST(CheckpointedRuns, EmptyPathIsRejected) {
  d::MinPlusOneOptions mpo;
  mpo.nv = 2;
  d::KrigingPolicy policy(kriging_options());
  EXPECT_THROW(
      (void)d::checkpointed_min_plus_one(policy, smooth, mpo, {"", 1}),
      std::invalid_argument);
}

}  // namespace
