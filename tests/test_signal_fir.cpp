#include "signal/fir.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>
#include <stdexcept>

#include "metrics/noise_power.hpp"
#include "signal/generator.hpp"
#include "util/rng.hpp"

namespace {

namespace s = ace::signal;

TEST(DesignLowpassFir, ValidationAndDcGain) {
  EXPECT_THROW((void)s::design_lowpass_fir(0, 0.2), std::invalid_argument);
  EXPECT_THROW((void)s::design_lowpass_fir(8, 0.0), std::invalid_argument);
  EXPECT_THROW((void)s::design_lowpass_fir(8, 0.5), std::invalid_argument);
  const auto h = s::design_lowpass_fir(64, 0.18);
  EXPECT_EQ(h.size(), 64u);
  double dc = 0.0;
  for (double c : h) dc += c;
  EXPECT_NEAR(dc, 1.0, 1e-12);
}

TEST(DesignLowpassFir, SymmetricLinearPhase) {
  const auto h = s::design_lowpass_fir(33, 0.25);
  for (std::size_t k = 0; k < h.size() / 2; ++k)
    EXPECT_NEAR(h[k], h[h.size() - 1 - k], 1e-12) << "tap " << k;
}

TEST(DesignLowpassFir, AttenuatesStopband) {
  const auto h = s::design_lowpass_fir(64, 0.1);
  // |H(f)| at f = 0.05 (passband) vs f = 0.3 (stopband).
  auto mag = [&](double f) {
    double re = 0.0, im = 0.0;
    for (std::size_t k = 0; k < h.size(); ++k) {
      const double phase =
          -2.0 * std::numbers::pi * f * static_cast<double>(k);
      re += h[k] * std::cos(phase);
      im += h[k] * std::sin(phase);
    }
    return std::sqrt(re * re + im * im);
  };
  EXPECT_GT(mag(0.05), 0.9);
  EXPECT_LT(mag(0.3), 0.01);
}

TEST(FirFilter, MatchesManualConvolution) {
  const s::FirFilter fir({0.5, 0.25, -0.125});
  const std::vector<double> x = {1.0, 0.0, 2.0, -1.0};
  const auto y = fir.filter(x);
  ASSERT_EQ(y.size(), 4u);
  EXPECT_DOUBLE_EQ(y[0], 0.5);
  EXPECT_DOUBLE_EQ(y[1], 0.25);
  EXPECT_DOUBLE_EQ(y[2], 1.0 - 0.125);
  EXPECT_DOUBLE_EQ(y[3], -0.5 + 0.5 + 0.0);
}

TEST(FirFilter, ValidationAndGain) {
  EXPECT_THROW(s::FirFilter({}), std::invalid_argument);
  const s::FirFilter fir({0.5, -0.5});
  EXPECT_DOUBLE_EQ(fir.l1_gain(), 1.0);
  EXPECT_EQ(fir.taps(), 2u);
}

TEST(QuantizedFir, WordLengthValidation) {
  const s::FirFilter fir(s::design_lowpass_fir(8, 0.2));
  const s::QuantizedFirFilter q(fir);
  EXPECT_THROW((void)q.filter({0.1}, {8}), std::invalid_argument);
  EXPECT_THROW((void)q.filter({0.1}, {8, 1}), std::invalid_argument);
  EXPECT_THROW((void)q.filter({0.1}, {8, 60}), std::invalid_argument);
}

TEST(QuantizedFir, WideWordsConvergeToReference) {
  ace::util::Rng rng(1);
  const auto input = s::noisy_multitone(rng, 256);
  const s::FirFilter fir(s::design_lowpass_fir(64, 0.18));
  const s::QuantizedFirFilter q(fir, /*coefficient_bits=*/24);
  const auto ref = fir.filter(input);
  const auto approx = q.filter(input, {32, 32});
  EXPECT_LT(ace::metrics::noise_power(approx, ref), 1e-12);
}

/// Property: noise power decreases (accuracy increases) as either word
/// length widens — the monotone surface of the paper's Fig. 1.
class FirMonotoneTest : public ::testing::TestWithParam<int> {};

TEST_P(FirMonotoneTest, NoiseShrinksWithWiderWords) {
  const int w = GetParam();
  ace::util::Rng rng(2);
  const auto input = s::noisy_multitone(rng, 256);
  const s::FirFilter fir(s::design_lowpass_fir(64, 0.18));
  const s::QuantizedFirFilter q(fir);
  const auto ref = fir.filter(input);
  const double p_narrow =
      ace::metrics::noise_power(q.filter(input, {w, w}), ref);
  const double p_wide =
      ace::metrics::noise_power(q.filter(input, {w + 3, w + 3}), ref);
  EXPECT_LT(p_wide, p_narrow);
}

INSTANTIATE_TEST_SUITE_P(Widths, FirMonotoneTest,
                         ::testing::Values(4, 6, 8, 10, 12));

TEST(QuantizedFir, DeterministicAcrossCalls) {
  ace::util::Rng rng(3);
  const auto input = s::noisy_multitone(rng, 128);
  const s::FirFilter fir(s::design_lowpass_fir(32, 0.2));
  const s::QuantizedFirFilter q(fir);
  EXPECT_EQ(q.filter(input, {8, 10}), q.filter(input, {8, 10}));
}

TEST(Generators, ShapesAndDeterminism) {
  ace::util::Rng a(9), b(9);
  EXPECT_EQ(s::white_noise(a, 64), s::white_noise(b, 64));
  EXPECT_THROW((void)s::white_noise(a, 0), std::invalid_argument);
  const auto tones = s::sine_mixture({0.1, 0.2}, 128, 0.8);
  double peak = 0.0;
  for (double x : tones) peak = std::max(peak, std::abs(x));
  EXPECT_NEAR(peak, 0.8, 1e-12);
  EXPECT_THROW((void)s::sine_mixture({}, 10), std::invalid_argument);
  EXPECT_THROW((void)s::sine_mixture({0.1}, 0), std::invalid_argument);
  const auto mt = s::noisy_multitone(a, 100, 0.9);
  for (double x : mt) EXPECT_LE(std::abs(x), 0.9 + 1e-12);
}

}  // namespace
