// Edge-path coverage across modules: fitter knobs, variogram binning with
// non-integer distances, scheduler tie-breaking, cross-module annealing
// through the kriging engine, and adaptive-sampling batch control.
#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

#include "core/engine.hpp"
#include "dse/adaptive_simulation.hpp"
#include "dse/annealing.hpp"
#include "dse/scheduler.hpp"
#include "kriging/empirical_variogram.hpp"
#include "kriging/fit.hpp"
#include "util/rng.hpp"

namespace {

namespace k = ace::kriging;
namespace d = ace::dse;

TEST(FitOptions, RestrictedFamilyListIsHonoured) {
  std::vector<std::vector<double>> pts;
  std::vector<double> vals;
  for (int i = 0; i < 12; ++i) {
    pts.push_back({static_cast<double>(i)});
    vals.push_back(0.5 * i);
  }
  const k::EmpiricalVariogram ev(pts, vals);
  k::FitOptions options;
  options.families = {k::ModelFamily::kSpherical};
  const auto all = k::fit_all(ev, options);
  ASSERT_EQ(all.size(), 1u);
  EXPECT_EQ(all[0].family, k::ModelFamily::kSpherical);
  const auto best = k::fit_best(ev, options);
  EXPECT_EQ(best.family, k::ModelFamily::kSpherical);
}

TEST(FitOptions, TinyRangeGridStillFits) {
  std::vector<std::vector<double>> pts;
  std::vector<double> vals;
  ace::util::Rng rng(200);
  double acc = 0.0;
  for (int i = 0; i < 20; ++i) {
    pts.push_back({static_cast<double>(i)});
    acc = 0.6 * acc + rng.normal(0.0, 1.0);
    vals.push_back(acc);
  }
  const k::EmpiricalVariogram ev(pts, vals);
  k::FitOptions options;
  options.range_grid = 1;  // Clamped up internally to >= 2.
  const auto fit = k::fit_family(ev, k::ModelFamily::kExponential, options);
  ASSERT_NE(fit.model, nullptr);
  EXPECT_GE(fit.weighted_sse, 0.0);
}

TEST(EmpiricalVariogram, FractionalDistancesBinByWidth) {
  // L2 distances on a 2-D lattice are irrational; bin width 0.5 groups
  // them deterministically.
  const std::vector<std::vector<double>> pts = {
      {0.0, 0.0}, {1.0, 0.0}, {1.0, 1.0}, {2.0, 1.0}};
  const std::vector<double> vals = {0.0, 1.0, 1.5, 2.5};
  const k::EmpiricalVariogram ev(pts, vals, k::l2_distance, 0.5);
  EXPECT_EQ(ev.total_pairs(), 6u);
  // Distances: {1 ×3, √2 ×2, √5 ×1}; width 0.5 puts 1 and √2 in the same
  // bin [1.0, 1.5) and √5 alone in [2.0, 2.5).
  ASSERT_EQ(ev.bins().size(), 2u);
  EXPECT_EQ(ev.bins()[0].pair_count, 5u);
  EXPECT_EQ(ev.bins()[1].pair_count, 1u);
  std::size_t total = 0;
  for (const auto& bin : ev.bins()) total += bin.pair_count;
  EXPECT_EQ(total, 6u);
  EXPECT_NEAR(ev.max_distance(), std::sqrt(5.0), 1e-12);
}

TEST(MaximinOrder, DeterministicTieBreaking) {
  // A symmetric square has many maximin ties; ordering must still be
  // reproducible call to call.
  std::vector<d::Config> batch = {{0, 0}, {0, 4}, {4, 0}, {4, 4}, {2, 2}};
  const auto a = d::maximin_order(batch);
  const auto b = d::maximin_order(batch);
  EXPECT_EQ(a, b);
  EXPECT_EQ(a[0], (d::Config{2, 2}));  // Medoid first.
}

TEST(Annealing, RunsThroughKrigingEngine) {
  // Cross-module smoke: annealing driven by kriged evaluations converges
  // to a feasible solution on a smooth surface.
  auto surface = [](const d::Config& c) {
    double acc = 0.0;
    for (int v : c) acc += 5.0 * v;
    return acc;
  };
  d::PolicyOptions policy;
  policy.distance = 2;
  ace::core::ErrorEvaluationEngine engine(surface, policy,
                                          d::MetricKind::kAccuracyDb);
  const d::Lattice lattice(3, 2, 16);
  d::AnnealingOptions options;
  options.lambda_min = 120.0;
  options.iterations = 2500;
  options.seed = 77;
  const auto result =
      d::simulated_annealing(engine.as_evaluator(), lattice, options);
  EXPECT_TRUE(result.feasible);
  // Exact check of the returned solution.
  EXPECT_GE(surface(result.best), 120.0 - 15.0);
  EXPECT_GT(engine.stats().interpolated, 0u);
}

TEST(AdaptiveMean, MinBatchesDelaysTheStoppingTest) {
  // Constant data converges at exactly min_batches · batch observations.
  for (const std::size_t min_batches : {1u, 3u, 5u}) {
    d::AdaptiveSimOptions options;
    options.batch = 10;
    options.min_batches = min_batches;
    const auto r =
        d::adaptive_mean([](std::size_t) { return 1.0; }, 1000, options);
    EXPECT_TRUE(r.converged);
    EXPECT_EQ(r.observations, 10u * min_batches);
  }
}

TEST(Engine, SensitivityFlowKeepsQualityMetricConsistent) {
  auto quality = [](const d::Config& levels) {
    double damage = 0.0;
    for (int e : levels) damage += 0.4 * std::ldexp(1.0, -e);
    return 1.0 - damage;
  };
  ace::core::ErrorEvaluationEngine engine(quality, {},
                                          d::MetricKind::kQualityRate);
  EXPECT_EQ(engine.metric_kind(), d::MetricKind::kQualityRate);
  d::SensitivityOptions options;
  options.nv = 2;
  options.level_max = 10;
  options.lambda_min = 0.9;
  const auto result = engine.analyze_sensitivity(options);
  EXPECT_TRUE(result.feasible);
  EXPECT_GE(quality(result.levels), 0.85);
}

}  // namespace
