// Golden-model validation: the normalized-double MC dataflow must match
// the bit-true integer HEVC interpolation to within the integer path's
// final rounding step (half an 8-bit LSB), modulo clipping.
#include "video/hevc_mc_int.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

#include "util/rng.hpp"

namespace {

namespace v = ace::video;

TEST(LumaFilterInt, TapsSumTo64AndMatchNormalized) {
  for (int phase = 0; phase < 4; ++phase) {
    const auto& taps = v::luma_filter_int(phase);
    int sum = 0;
    for (int c : taps) sum += c;
    EXPECT_EQ(sum, 64) << "phase " << phase;
    const auto& norm = v::luma_filter(phase);
    for (std::size_t i = 0; i < v::kTaps; ++i)
      EXPECT_DOUBLE_EQ(norm[i], taps[i] / 64.0);
  }
  EXPECT_THROW((void)v::luma_filter_int(4), std::invalid_argument);
}

TEST(InterpolateInteger, RejectsOffGridSamples) {
  v::McJob job;
  job.window.at(0, 0) = 0.001;  // Not k/256.
  job.frac_x = 2;
  EXPECT_THROW((void)v::interpolate_integer(job), std::invalid_argument);
}

TEST(InterpolateInteger, CopyPhaseIsExact) {
  ace::util::Rng rng(70);
  v::McJob job;
  job.window = v::synthetic_patch(rng, v::kWindow, v::kWindow);
  job.frac_x = 0;
  job.frac_y = 0;
  const auto out = v::interpolate_integer(job);
  for (std::size_t y = 0; y < v::kBlockSize; ++y)
    for (std::size_t x = 0; x < v::kBlockSize; ++x)
      EXPECT_EQ(out.samples[x][y],
                static_cast<int>(std::lround(job.window.at(x + 3, y + 3) *
                                             256.0)));
}

class GoldenModelTest
    : public ::testing::TestWithParam<std::tuple<int, int, std::uint64_t>> {};

TEST_P(GoldenModelTest, NormalizedReferenceMatchesIntegerPath) {
  const auto [fx, fy, seed] = GetParam();
  ace::util::Rng rng(seed);
  v::McJob job;
  job.window = v::synthetic_patch(rng, v::kWindow, v::kWindow);
  job.frac_x = fx;
  job.frac_y = fy;

  const auto golden = v::interpolate_integer(job);
  const auto reference = v::interpolate_reference(job);
  for (std::size_t y = 0; y < v::kBlockSize; ++y)
    for (std::size_t x = 0; x < v::kBlockSize; ++x) {
      // The double path carries the exact rational value (clipped); the
      // integer path rounds it to the 8-bit grid at the very end.
      const double exact = reference.at(x, y) * 256.0;
      const double clipped = std::clamp(exact, 0.0, 255.0);
      EXPECT_LE(std::abs(clipped - golden.samples[x][y]), 0.5 + 1e-9)
          << "pixel (" << x << ", " << y << ") phases (" << fx << ", " << fy
          << ")";
    }
}

INSTANTIATE_TEST_SUITE_P(
    PhasesAndContent, GoldenModelTest,
    ::testing::Combine(::testing::Values(0, 1, 2, 3),
                       ::testing::Values(0, 1, 2, 3),
                       ::testing::Values<std::uint64_t>(71, 72, 73)));

}  // namespace
